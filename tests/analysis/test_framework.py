"""Tests for the dataflow framework and classic analyses."""

from repro.analysis import def_use_chains, liveness, reaching_definitions
from repro.cfg import NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def assign_storing(cfg, var, which=0):
    found = [
        n.id
        for n in sorted(cfg.nodes.values(), key=lambda n: n.id)
        if n.kind is NodeKind.ASSIGN and n.stores() == {var}
    ]
    return found[which]


def test_reaching_definitions_linear():
    cfg = build_cfg(parse("x := 1; y := x; x := 2; z := x;"))
    rd_in, _ = reaching_definitions(cfg)
    x1 = assign_storing(cfg, "x", 0)
    x2 = assign_storing(cfg, "x", 1)
    y = assign_storing(cfg, "y")
    z = assign_storing(cfg, "z")
    assert (x1, "x") in rd_in[y]
    assert (x2, "x") not in rd_in[y]
    assert (x2, "x") in rd_in[z]
    assert (x1, "x") not in rd_in[z]


def test_reaching_definitions_through_loop():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    rd_in, _ = reaching_definitions(cfg)
    y = assign_storing(cfg, "y")
    x0 = assign_storing(cfg, "x", 0)  # x := 0
    x1 = assign_storing(cfg, "x", 1)  # x := x + 1
    # both defs of x reach the use in y := x + 1 (first vs later iterations)
    assert (x0, "x") in rd_in[y]
    assert (x1, "x") in rd_in[y]


def test_initial_definition_reaches_first_use():
    cfg = build_cfg(parse("y := x;"))
    rd_in, _ = reaching_definitions(cfg)
    y = assign_storing(cfg, "y")
    assert (cfg.entry, "x") in rd_in[y]


def test_liveness_simple():
    cfg = build_cfg(parse("x := 1; y := x; z := y;"))
    live_in, live_out = liveness(cfg)
    x = assign_storing(cfg, "x")
    y = assign_storing(cfg, "y")
    assert "x" in live_out[x]
    assert "x" in live_in[y]
    assert "x" not in live_out[y]


def test_liveness_branch():
    cfg = build_cfg(parse("if c == 0 then { y := a; } else { y := b; } z := y;"))
    live_in, _ = liveness(cfg)
    fork = next(n for n in cfg.nodes.values() if n.kind is NodeKind.FORK)
    assert {"a", "b", "c"} <= set(live_in[fork.id])


def test_array_store_does_not_kill_liveness():
    cfg = build_cfg(parse("array a[4]; a[i] := 1; x := a[j];"))
    live_in, _ = liveness(cfg)
    store = assign_storing(cfg, "a")
    # `a` stays live through the partial store
    assert "a" in live_in[store]


def test_def_use_chains_linear():
    cfg = build_cfg(parse("x := 1; y := x; z := x;"))
    du = def_use_chains(cfg)
    x = assign_storing(cfg, "x")
    y = assign_storing(cfg, "y")
    z = assign_storing(cfg, "z")
    assert du.uses_of_def[(x, "x")] == {y, z}
    assert du.defs_of_use[(y, "x")] == {x}


def test_def_use_chains_loop_carried():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    du = def_use_chains(cfg)
    x1 = assign_storing(cfg, "x", 1)  # x := x + 1 in loop
    # its def is used by itself (next iteration), by y := x + 1, and the fork
    users = du.uses_of_def[(x1, "x")]
    assert x1 in users
    assert assign_storing(cfg, "y") in users
    fork = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.FORK)
    assert fork in users
