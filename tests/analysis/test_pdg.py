"""Tests for program dependence graph construction."""

from repro.analysis.pdg import DepKind, build_pdg, memory_order_constraints
from repro.cfg import NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def node_storing(cfg, var, which=0):
    found = [
        n.id
        for n in sorted(cfg.nodes.values(), key=lambda n: n.id)
        if n.kind is NodeKind.ASSIGN and n.stores() == {var}
    ]
    return found[which]


def test_flow_dependences_linear():
    cfg = build_cfg(parse("x := 1; y := x; z := y;"))
    pdg = build_pdg(cfg)
    x, y, z = (node_storing(cfg, v) for v in "xyz")
    flows = {(e.src, e.dst, e.var) for e in pdg.of_kind(DepKind.FLOW)}
    assert (x, y, "x") in flows
    assert (y, z, "y") in flows
    assert (x, z, "x") not in flows


def test_anti_dependence():
    cfg = build_cfg(parse("y := x; x := 2;"))
    pdg = build_pdg(cfg)
    y = node_storing(cfg, "y")
    x = node_storing(cfg, "x")
    antis = {(e.src, e.dst, e.var) for e in pdg.of_kind(DepKind.ANTI)}
    assert (y, x, "x") in antis


def test_output_dependence():
    cfg = build_cfg(parse("x := 1; x := 2;"))
    pdg = build_pdg(cfg)
    x1 = node_storing(cfg, "x", 0)
    x2 = node_storing(cfg, "x", 1)
    outs = {(e.src, e.dst) for e in pdg.of_kind(DepKind.OUTPUT)}
    assert (x1, x2) in outs
    assert (x2, x1) not in outs  # straight-line: no path back


def test_loop_carried_dependences_are_bidirectional():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    pdg = build_pdg(cfg)
    x1 = node_storing(cfg, "x", 1)  # x := x + 1 inside the loop
    outs = {(e.src, e.dst) for e in pdg.of_kind(DepKind.OUTPUT) if e.var == "x"}
    x0 = node_storing(cfg, "x", 0)
    assert (x0, x1) in outs
    # and around the loop the later def "reaches" the earlier one? no:
    # x0 is outside the cycle, so no output dep back to it
    assert (x1, x0) not in outs


def test_control_dependence_edges_carry_direction():
    cfg = build_cfg(parse("if c == 0 then { y := 1; } else { y := 2; }"))
    pdg = build_pdg(cfg)
    ctrl = pdg.of_kind(DepKind.CONTROL)
    dirs = {e.label for e in ctrl if cfg.node(e.src).kind is NodeKind.FORK}
    assert dirs == {True, False}


def test_deps_of_collects_incoming():
    cfg = build_cfg(parse("x := 1; y := x;"))
    pdg = build_pdg(cfg)
    y = node_storing(cfg, "y")
    kinds = {e.kind for e in pdg.deps_of(y)}
    assert DepKind.FLOW in kinds
    assert DepKind.CONTROL in kinds  # on start


def test_memory_order_constraints_counts_anti_plus_output():
    cfg = build_cfg(parse("y := x; x := 1; x := 2;"))
    pdg = build_pdg(cfg)
    assert memory_order_constraints(pdg) == len(
        pdg.of_kind(DepKind.ANTI)
    ) + len(pdg.of_kind(DepKind.OUTPUT))
    assert memory_order_constraints(pdg) >= 2


def test_single_assignment_program_has_no_memory_order_constraints():
    cfg = build_cfg(parse("a := 1; b := a; c := a + b;"))
    pdg = build_pdg(cfg)
    assert memory_order_constraints(pdg) == 0


def test_count_summary():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    counts = build_pdg(cfg).count()
    assert set(counts) == {"control", "flow", "anti", "output"}
    assert all(v >= 0 for v in counts.values())
    assert counts["flow"] > 0 and counts["control"] > 0
