"""Tests for SSA construction (Section 6.1 connection)."""

from repro.analysis import construct_ssa
from repro.analysis.ssa import prune_dead_phis
from repro.cfg import NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""

DIAMOND = "if c == 0 then { y := 1; } else { y := 2; } z := y;"


def assign_storing(cfg, var, which=0):
    found = [
        n.id
        for n in sorted(cfg.nodes.values(), key=lambda n: n.id)
        if n.kind is NodeKind.ASSIGN and n.stores() == {var}
    ]
    return found[which]


def test_diamond_phi_for_y_at_join():
    cfg = build_cfg(parse(DIAMOND))
    ssa = construct_ssa(cfg)
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    phis = {p.var for p in ssa.phis.get(join, [])}
    assert "y" in phis
    y_phi = next(p for p in ssa.phis[join] if p.var == "y")
    versions = {v for _, v in y_phi.sources}
    d1 = ssa.def_version[(assign_storing(cfg, "y", 0), "y")]
    d2 = ssa.def_version[(assign_storing(cfg, "y", 1), "y")]
    assert versions == {d1, d2}


def test_diamond_use_of_phi_result():
    cfg = build_cfg(parse(DIAMOND))
    ssa = construct_ssa(cfg)
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    y_phi = next(p for p in ssa.phis[join] if p.var == "y")
    z = assign_storing(cfg, "z")
    assert ssa.use_versions[(z, "y")] == y_phi.target_version


def test_no_phi_for_unconditional_variable():
    cfg = build_cfg(parse(DIAMOND))
    ssa = construct_ssa(cfg)
    for phis in ssa.phis.values():
        assert all(p.var != "c" for p in phis)


def test_loop_phi_at_header():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    ssa = construct_ssa(cfg)
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    xs = [p for p in ssa.phis.get(join, []) if p.var == "x"]
    assert len(xs) == 1
    phi = xs[0]
    # sources: the initial x := 0 and the loop-carried x := x + 1
    incoming = {v for _, v in phi.sources}
    assert ssa.def_version[(assign_storing(cfg, "x", 0), "x")] in incoming
    assert ssa.def_version[(assign_storing(cfg, "x", 1), "x")] in incoming


def test_ssa_versions_are_distinct_per_def():
    cfg = build_cfg(parse("x := 1; x := 2; x := 3;"))
    ssa = construct_ssa(cfg)
    vs = [
        ssa.def_version[(assign_storing(cfg, "x", k), "x")] for k in range(3)
    ]
    assert len(set(vs)) == 3


def test_use_before_def_reads_version_zero():
    cfg = build_cfg(parse("y := x;"))
    ssa = construct_ssa(cfg)
    y = assign_storing(cfg, "y")
    assert ssa.use_versions[(y, "x")] == 0


def test_straightline_reads_latest_version():
    cfg = build_cfg(parse("x := 1; y := x; x := 2; z := x;"))
    ssa = construct_ssa(cfg)
    y = assign_storing(cfg, "y")
    z = assign_storing(cfg, "z")
    assert ssa.use_versions[(y, "x")] == ssa.def_version[
        (assign_storing(cfg, "x", 0), "x")
    ]
    assert ssa.use_versions[(z, "x")] == ssa.def_version[
        (assign_storing(cfg, "x", 1), "x")
    ]


def test_prune_dead_phis():
    # y's merge result is never used
    src = "if c == 0 then { y := 1; } else { y := 2; } z := 3;"
    cfg = build_cfg(parse(src))
    ssa = construct_ssa(cfg)
    before = ssa.phi_count()
    pruned = prune_dead_phis(ssa)
    assert pruned.phi_count() < before
    for phis in pruned.phis.values():
        assert all(p.var != "y" for p in phis)


def test_loop_phis_survive_pruning():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    ssa = prune_dead_phis(construct_ssa(cfg))
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    assert any(p.var == "x" for p in ssa.phis.get(join, []))


def test_array_treated_as_whole_variable():
    src = """
    array a[4];
    if c == 0 then { a[0] := 1; } else { a[1] := 2; }
    q := a[0];
    """
    cfg = build_cfg(parse(src))
    ssa = construct_ssa(cfg)
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    assert any(p.var == "a" for p in ssa.phis.get(join, []))
