"""Tests for the random program generators: determinism, termination,
reducibility."""

import pytest

from repro.bench.generators import random_program, random_structured_program
from repro.cfg import build_cfg, find_loops
from repro.interp import run_ast
from repro.lang import pretty


@pytest.mark.parametrize("gen", [random_program, random_structured_program])
def test_deterministic_per_seed(gen):
    a = pretty(gen(1234))
    b = pretty(gen(1234))
    assert a == b
    c = pretty(gen(1235))
    assert a != c


@pytest.mark.parametrize("gen", [random_program, random_structured_program])
def test_generated_programs_terminate(gen):
    for seed in range(40):
        run_ast(gen(seed), max_steps=200_000)  # must not hit the limit


def test_unstructured_generator_is_reducible():
    """The generator's nesting discipline keeps every cyclic region
    single-entry: find_loops never raises IrreducibleCFGError."""
    for seed in range(60):
        cfg = build_cfg(random_program(seed))
        find_loops(cfg)


def test_unstructured_generator_produces_loops_and_branches():
    saw_loop = saw_branch = False
    for seed in range(40):
        cfg = build_cfg(random_program(seed))
        if find_loops(cfg):
            saw_loop = True
        from repro.cfg import NodeKind

        if any(n.kind is NodeKind.FORK for n in cfg.nodes.values()):
            saw_branch = True
    assert saw_loop and saw_branch


def test_array_variant_uses_arrays():
    saw_array = False
    for seed in range(20):
        prog = random_structured_program(seed, arrays=True)
        if "arr" in pretty(prog):
            saw_array = True
            run_ast(prog)
    assert saw_array


def test_structured_generator_nests():
    saw_nested = False
    for seed in range(40):
        text = pretty(random_structured_program(seed, max_depth=2))
        body_lines = [l for l in text.splitlines() if l.startswith("    ")]
        if body_lines:
            saw_nested = True
    assert saw_nested
