"""Tests for the bench harness and workload corpus."""

import pytest

from repro.bench import CORPUS, compare_schemas, format_table, workload
from repro.bench.harness import HEADER
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig


def test_corpus_names_unique():
    names = [w.name for w in CORPUS]
    assert len(names) == len(set(names))


def test_workload_lookup():
    assert workload("gcd").name == "gcd"
    with pytest.raises(KeyError):
        workload("nonexistent")


def test_all_corpus_programs_parse_and_run():
    for wl in CORPUS:
        prog = parse(wl.source)
        for inputs in wl.inputs:
            run_ast(prog, inputs)


def test_compare_schemas_validates_against_reference():
    rows = compare_schemas(workload("fib"), ["schema1", "memory_elim"])
    assert len(rows) == 2
    assert {r.schema for r in rows} == {"schema1", "memory_elim"}
    assert all(r.cycles > 0 and r.operations > 0 for r in rows)


def test_compare_schemas_respects_config():
    fast = compare_schemas(
        workload("fib"), ["schema1"], config=MachineConfig(memory_latency=1)
    )[0]
    slow = compare_schemas(
        workload("fib"), ["schema1"], config=MachineConfig(memory_latency=9)
    )[0]
    assert slow.cycles > fast.cycles


def test_compare_schemas_inputs_override():
    small = compare_schemas(
        workload("fib"), ["schema1"], inputs={"n": 1}
    )[0]
    big = compare_schemas(workload("fib"), ["schema1"], inputs={"n": 10})[0]
    assert big.cycles > small.cycles


def test_format_table_alignment():
    table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
    lines = table.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert len(set(len(l) for l in lines)) == 1  # all same width


def test_schema_row_cells_match_header():
    rows = compare_schemas(workload("gcd"), ["schema1"])
    assert len(rows[0].cells()) == len(HEADER)
