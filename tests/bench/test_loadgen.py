"""Load-generator tests: the closed-loop report and the optional
server-side metrics fetch."""

import uuid

from repro.bench.loadgen import run_load
from repro.engine import BatchJob
from repro.service import running_server


def _sock():
    return f"/tmp/repro-load-{uuid.uuid4().hex[:8]}.sock"


def test_run_load_reports_and_fetches_server_metrics():
    jobs = [BatchJob("x := 1 + 2;", name=f"j{i}") for i in range(4)]
    with running_server(path=_sock()) as (ep, _server):
        plain = run_load(ep, jobs, clients=2)
        report = run_load(ep, jobs, clients=2, fetch_metrics=True)
    assert plain.server_metrics is None  # opt-in only
    assert plain.completed == 4 and report.completed == 4
    m = report.server_metrics
    assert m["counters"]["service.jobs.completed"] == 8  # both runs
    assert m["histograms"]["service.latency_ms.total"]["count"] == 8
    assert report.latency_ms.count == 4
    assert report.throughput > 0


def test_plan_campaign_deterministic_per_seed():
    from repro.bench.loadgen import _default_jobs, plan_campaign

    jobs = _default_jobs(4, 50)
    a = plan_campaign(jobs, rate=40.0, duration_s=2.0, seed=7,
                      connections=3)
    b = plan_campaign(jobs, rate=40.0, duration_s=2.0, seed=7,
                      connections=3)
    assert a == b  # byte-identical campaign for a given seed
    assert len(a) == 3
    for schedule in a:
        assert all(0.0 <= t < 2.0 for t, _ in schedule)
        assert all(0 <= j < len(jobs) for _, j in schedule)
        # arrivals are sorted by offset within a connection
        assert [t for t, _ in schedule] == sorted(t for t, _ in schedule)
    c = plan_campaign(jobs, rate=40.0, duration_s=2.0, seed=8,
                      connections=3)
    assert a != c  # a different seed is a different campaign


def test_run_load_seed_reproducible():
    """With a seed, the closed-loop generator picks the same job
    sequence every run — same completed count, same per-job totals."""
    jobs = [BatchJob(f"x := {i};", name=f"j{i}") for i in range(6)]
    with running_server(path=_sock()) as (ep, _server):
        r1 = run_load(ep, jobs, clients=2, rounds=3, seed=42)
        r2 = run_load(ep, jobs, clients=2, rounds=3, seed=42)
    assert r1.offered == r2.offered == 6 * 3
    assert r1.completed == r2.completed == 6 * 3


def test_open_loop_campaign_smoke():
    from repro.bench.loadgen import _default_jobs, run_open_loop

    jobs = _default_jobs(3, 40)
    with running_server(path=_sock()) as (ep, _server):
        report = run_open_loop(ep, jobs, rate=30.0, duration_s=1.0,
                               connections=2, seed=5)
    assert report.offered > 0
    assert report.offered == (report.completed + report.rejected
                              + report.job_errors)
    assert report.offered_rate == 30.0
    assert "open-loop" in report.summary() or report.summary()
