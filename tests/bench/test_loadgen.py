"""Load-generator tests: the closed-loop report and the optional
server-side metrics fetch."""

import uuid

from repro.bench.loadgen import run_load
from repro.engine import BatchJob
from repro.service import running_server


def _sock():
    return f"/tmp/repro-load-{uuid.uuid4().hex[:8]}.sock"


def test_run_load_reports_and_fetches_server_metrics():
    jobs = [BatchJob("x := 1 + 2;", name=f"j{i}") for i in range(4)]
    with running_server(path=_sock()) as (ep, _server):
        plain = run_load(ep, jobs, clients=2)
        report = run_load(ep, jobs, clients=2, fetch_metrics=True)
    assert plain.server_metrics is None  # opt-in only
    assert plain.completed == 4 and report.completed == 4
    m = report.server_metrics
    assert m["counters"]["service.jobs.completed"] == 8  # both runs
    assert m["histograms"]["service.latency_ms.total"]["count"] == 8
    assert report.latency_ms.count == 4
    assert report.throughput > 0
