"""Tests for AST -> CFG construction (paper Section 2.1, Figure 1)."""

import pytest

from repro.cfg import CFG, CFGError, NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def kinds_count(cfg: CFG) -> dict:
    out: dict = {}
    for n in cfg.nodes.values():
        out[n.kind] = out.get(n.kind, 0) + 1
    return out


def node_of_kind(cfg, kind):
    return [n for n in cfg.nodes.values() if n.kind is kind]


def test_running_example_matches_figure_1():
    """Figure 1: start, join l, y:=x+1, x:=x+1, fork (x<5), end."""
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    counts = kinds_count(cfg)
    assert counts[NodeKind.START] == 1
    assert counts[NodeKind.END] == 1
    assert counts[NodeKind.ASSIGN] == 3
    assert counts[NodeKind.FORK] == 1  # the if; start is a fork by convention
    assert counts[NodeKind.START] == 1
    assert counts[NodeKind.JOIN] == 1


def test_running_example_join_has_two_predecessors():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    (join,) = node_of_kind(cfg, NodeKind.JOIN)
    assert join.label == "l"
    assert len(cfg.pred_ids(join.id)) == 2


def test_start_is_a_fork_with_convention_edge_to_end():
    cfg = build_cfg(parse("x := 1;"))
    out = cfg.out_edges(cfg.entry)
    dirs = {e.direction: e.dst for e in out}
    assert set(dirs) == {True, False}
    assert dirs[False] == cfg.exit
    assert cfg.is_fork(cfg.entry)


def test_fork_out_directions():
    cfg = build_cfg(parse("l: if x < 5 then goto l;"))
    forks = [
        n for n in node_of_kind(cfg, NodeKind.FORK) if n.id != cfg.entry
    ]
    (fork,) = forks
    dirs = {e.direction for e in cfg.out_edges(fork.id)}
    assert dirs == {True, False}
    # True edge loops back to the join, False edge exits
    tdst = next(e.dst for e in cfg.out_edges(fork.id) if e.direction)
    assert cfg.node(tdst).kind is NodeKind.JOIN


def test_empty_program():
    cfg = build_cfg(parse(""))
    assert set(cfg.nodes) == {cfg.entry, cfg.exit}
    assert len(cfg.in_edges(cfg.exit)) == 2


def test_assign_node_loads_and_stores():
    cfg = build_cfg(parse("x := x + y;"))
    (a,) = node_of_kind(cfg, NodeKind.ASSIGN)
    assert a.loads() == {"x", "y"}
    assert a.stores() == {"x"}
    assert a.refs() == {"x", "y"}


def test_array_assign_references_array_and_subscript():
    cfg = build_cfg(parse("array a[4]; a[i] := x;"))
    (a,) = node_of_kind(cfg, NodeKind.ASSIGN)
    assert a.loads() == {"i", "x"}
    assert a.stores() == {"a"}


def test_fork_loads_predicate_variables():
    cfg = build_cfg(parse("l: if x + y < z then goto l;"))
    fork = next(
        n for n in node_of_kind(cfg, NodeKind.FORK) if n.id != cfg.entry
    )
    assert fork.loads() == {"x", "y", "z"}
    assert fork.stores() == set()


def test_structured_if_lowering():
    cfg = build_cfg(parse("if x == 0 then { y := 1; } else { y := 2; }"))
    counts = kinds_count(cfg)
    assert counts[NodeKind.ASSIGN] == 2
    assert counts[NodeKind.FORK] == 1
    # one merge point after the if
    assert counts.get(NodeKind.JOIN, 0) == 1


def test_structured_if_without_else():
    cfg = build_cfg(parse("if x == 0 then { y := 1; } y := 3;"))
    counts = kinds_count(cfg)
    assert counts[NodeKind.ASSIGN] == 2
    assert counts.get(NodeKind.JOIN, 0) == 1


def test_structured_while_lowering():
    cfg = build_cfg(parse("while i < 10 do { i := i + 1; }"))
    counts = kinds_count(cfg)
    assert counts[NodeKind.ASSIGN] == 1
    assert counts[NodeKind.FORK] == 1
    assert counts[NodeKind.JOIN] == 1  # loop head


def test_while_head_join_has_two_preds():
    cfg = build_cfg(parse("while i < 10 do { i := i + 1; }"))
    (join,) = node_of_kind(cfg, NodeKind.JOIN)
    assert len(cfg.pred_ids(join.id)) == 2


def test_dead_code_is_pruned():
    cfg = build_cfg(parse("goto l; x := 99; l: y := 1;"))
    assigns = node_of_kind(cfg, NodeKind.ASSIGN)
    assert len(assigns) == 1
    assert assigns[0].stores() == {"y"}


def test_dead_code_with_targeted_label_stays():
    src = "goto m; l: x := 1; m: if p < 1 then goto l;"
    cfg = build_cfg(parse(src))
    assigns = node_of_kind(cfg, NodeKind.ASSIGN)
    assert len(assigns) == 1  # x := 1 reachable via the fork


def test_nonterminating_program_rejected():
    with pytest.raises(CFGError):
        build_cfg(parse("l: x := 1; goto l;"))


def test_constant_true_while_is_structurally_fine():
    # the CFG only checks *structural* reachability of end; a constant-true
    # predicate still has a False out-edge
    build_cfg(parse("while 1 > 0 do { x := 1; }")).validate()


def test_single_pred_joins_spliced_by_default():
    cfg = build_cfg(parse("if x == 0 then { y := 1; } else { y := 2; }"))
    for j in node_of_kind(cfg, NodeKind.JOIN):
        assert len(cfg.pred_ids(j.id)) > 1


def test_single_pred_joins_kept_when_not_simplifying():
    cfg = build_cfg(
        parse("if x == 0 then { y := 1; } else { y := 2; }"), simplify=False
    )
    joins = node_of_kind(cfg, NodeKind.JOIN)
    assert any(len(cfg.pred_ids(j.id)) == 1 for j in joins)
    cfg.validate()


def test_multiway_merge_via_gotos():
    src = """
    if a < 1 then goto m;
    if b < 1 then goto m;
    c := 1;
    m: d := 2;
    """
    cfg = build_cfg(parse(src))
    (join,) = node_of_kind(cfg, NodeKind.JOIN)
    assert len(cfg.pred_ids(join.id)) == 3


def test_validate_rejects_hand_built_bad_fork():
    cfg = CFG()
    s = cfg.add_node(NodeKind.START)
    e = cfg.add_node(NodeKind.END)
    cfg.add_edge(s.id, e.id, True)  # missing False edge
    with pytest.raises(CFGError):
        cfg.validate()


def test_copy_is_independent():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    cp = cfg.copy()
    nid = cp.add_node(NodeKind.JOIN, label="zz").id
    assert nid not in cfg.nodes
    assert cfg.num_edges() == cp.num_edges() - 0  # edges untouched


def test_variables_listing():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    assert set(cfg.variables()) == {"x", "y"}


def test_reverse_postorder_starts_at_entry():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    rpo = cfg.reverse_postorder()
    assert rpo[0] == cfg.entry
    assert set(rpo) == set(cfg.nodes)


def test_to_networkx_roundtrip_counts():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    g = cfg.to_networkx()
    assert g.number_of_nodes() == len(cfg.nodes)
    assert g.number_of_edges() == cfg.num_edges()


def test_figure_9_program_shape():
    """Figure 9(a): x unused inside the conditional."""
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cfg = build_cfg(parse(src))
    counts = kinds_count(cfg)
    assert counts[NodeKind.ASSIGN] == 4
    assert counts[NodeKind.FORK] == 1
    assert counts[NodeKind.JOIN] == 1
