"""Tests for the CFG DOT exporter."""

from repro.cfg import build_cfg, cfg_to_dot, decompose
from repro.lang import parse

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def test_dot_contains_all_nodes_and_edges():
    cfg = build_cfg(parse(SRC))
    dot = cfg_to_dot(cfg)
    assert dot.startswith("digraph")
    for nid in cfg.nodes:
        assert f"n{nid} " in dot or f"n{nid} ->" in dot
    assert dot.count("->") == cfg.num_edges()


def test_dot_labels_fork_directions():
    cfg = build_cfg(parse(SRC))
    dot = cfg_to_dot(cfg)
    assert '[label="T"]' in dot
    assert '[label="F"]' in dot


def test_dot_shapes_by_kind():
    g, _ = decompose(build_cfg(parse(SRC)))
    dot = cfg_to_dot(g)
    assert "shape=diamond" in dot  # fork
    assert "shape=house" in dot  # loop entry
    assert "shape=invhouse" in dot  # loop exit


def test_dot_escapes_quotes():
    cfg = build_cfg(parse("x := 1;"))
    dot = cfg_to_dot(cfg, title="t")
    assert '"' in dot  # well-formed attributes
