"""Tests for interval decomposition and loop-control insertion (Section 3)."""

import pytest

from repro.cfg import (
    IrreducibleCFGError,
    NodeKind,
    build_cfg,
    find_loops,
    insert_loop_controls,
)
from repro.cfg.intervals import split_irreducible
from repro.cfg.graph import CFG
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def test_running_example_has_one_loop():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    loops = find_loops(cfg)
    assert len(loops) == 1
    lp = loops[0]
    assert cfg.node(lp.header).kind is NodeKind.JOIN
    assert lp.parent is None
    assert lp.depth == 0
    assert lp.refs == {"x", "y"}


def test_loop_body_is_the_cycle():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    (lp,) = find_loops(cfg)
    kinds = {cfg.node(n).kind for n in lp.body}
    assert kinds == {NodeKind.JOIN, NodeKind.ASSIGN, NodeKind.FORK}
    assert len(lp.body) == 4  # join, two assigns, fork


def test_acyclic_program_has_no_loops():
    cfg = build_cfg(parse("x := 1; if x < 2 then { y := 1; } y := 2;"))
    assert find_loops(cfg) == []


def test_insert_loop_controls_running_example():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    g, loops = insert_loop_controls(cfg)
    (lp,) = loops
    le = g.node(lp.entry_node)
    assert le.kind is NodeKind.LOOP_ENTRY
    assert le.carried_refs == {"x", "y"}
    # header now has exactly one predecessor: the loop entry
    assert g.pred_ids(lp.header) == [lp.entry_node]
    # loop entry receives the external entry and the backedge
    assert len(g.pred_ids(lp.entry_node)) == 2
    # one exit, on the fork's False edge
    assert len(lp.exit_nodes) == 1
    lx = g.node(lp.exit_nodes[0])
    assert lx.kind is NodeKind.LOOP_EXIT
    (pe,) = g.in_edges(lx.id)
    assert pe.direction is False
    g.validate()


def test_nested_loops():
    src = """
    i := 0;
    outer: j := 0;
    inner: j := j + 1;
      if j < 3 then goto inner;
    i := i + 1;
    if i < 3 then goto outer;
    """
    cfg = build_cfg(parse(src))
    g, loops = insert_loop_controls(cfg)
    assert len(loops) == 2
    outer = next(lp for lp in loops if lp.parent is None)
    inner = next(lp for lp in loops if lp.parent is not None)
    assert inner.parent == outer.id
    assert inner.depth == outer.depth + 1
    # inner loop's control nodes live inside the outer loop's body
    assert inner.entry_node in outer.body
    for lx in inner.exit_nodes:
        assert lx in outer.body
    assert inner.refs == {"j"}
    assert outer.refs == {"i", "j"}
    g.validate()


def test_multi_level_exit_passes_both_loop_exits():
    src = """
    i := 0;
    outer: j := 0;
    inner: j := j + 1;
      if j > 10 then goto done;
      if j < 3 then goto inner;
    i := i + 1;
    if i < 3 then goto outer;
    done: r := 1;
    """
    cfg = build_cfg(parse(src))
    g, loops = insert_loop_controls(cfg)
    inner = next(lp for lp in loops if lp.parent is not None)
    outer = next(lp for lp in loops if lp.parent is None)
    # the goto done edge exits inner first, then outer: find an inner exit
    # whose successor is an outer exit
    chained = [
        lx
        for lx in inner.exit_nodes
        if g.node(g.succ_ids(lx)[0]).kind is NodeKind.LOOP_EXIT
        and g.node(g.succ_ids(lx)[0]).loop_id == outer.id
    ]
    assert chained, "expected an inner LOOP_EXIT chained into an outer one"
    g.validate()


def test_while_loop_controls():
    cfg = build_cfg(parse("while i < 10 do { i := i + 1; }"))
    g, loops = insert_loop_controls(cfg)
    (lp,) = loops
    assert lp.refs == {"i"}
    assert len(lp.exit_nodes) == 1


def test_two_sequential_loops_are_separate():
    src = """
    a: i := i + 1; if i < 3 then goto a;
    b: j := j + 1; if j < 3 then goto b;
    """
    cfg = build_cfg(parse(src))
    g, loops = insert_loop_controls(cfg)
    assert len(loops) == 2
    assert all(lp.parent is None for lp in loops)
    refs = sorted(sorted(lp.refs) for lp in loops)
    assert refs == [["i"], ["j"]]


def test_loop_with_two_backedges_single_entry():
    src = """
    h: x := x + 1;
    if x % 2 == 0 then goto h;
    x := x + 10;
    if x < 100 then goto h;
    """
    cfg = build_cfg(parse(src))
    g, loops = insert_loop_controls(cfg)
    (lp,) = loops
    # loop entry merges: one external entry + two backedges
    assert len(g.pred_ids(lp.entry_node)) == 3
    assert len(lp.back_sources) == 2
    g.validate()


def _irreducible_cfg() -> CFG:
    """Hand-built irreducible graph: two mutually-jumping labels entered at
    both points.  (Our builder cannot express this without going through a
    fork, so construct it directly.)

        start -T-> f1 -T-> j1 <-> j2 ... both j1, j2 entered from outside
    """
    from repro.lang.ast_nodes import BinOp, IntLit, Var

    cfg = CFG()
    s = cfg.add_node(NodeKind.START)
    e = cfg.add_node(NodeKind.END)
    p = BinOp("<", Var("x"), IntLit(1))
    f1 = cfg.add_node(NodeKind.FORK, pred=p)
    j1 = cfg.add_node(NodeKind.JOIN, label="j1")
    j2 = cfg.add_node(NodeKind.JOIN, label="j2")
    f2 = cfg.add_node(NodeKind.FORK, pred=p)
    f3 = cfg.add_node(NodeKind.FORK, pred=p)
    cfg.add_edge(s.id, f1.id, True)
    cfg.add_edge(s.id, e.id, False)
    cfg.add_edge(f1.id, j1.id, True)
    cfg.add_edge(f1.id, j2.id, False)
    cfg.add_edge(j1.id, f2.id, None)
    cfg.add_edge(f2.id, j2.id, True)
    cfg.add_edge(f2.id, e.id, False)
    cfg.add_edge(j2.id, f3.id, None)
    cfg.add_edge(f3.id, j1.id, True)
    cfg.add_edge(f3.id, e.id, False)
    cfg.validate()
    return cfg


def test_irreducible_cfg_detected():
    with pytest.raises(IrreducibleCFGError):
        find_loops(_irreducible_cfg())
    with pytest.raises(IrreducibleCFGError):
        insert_loop_controls(_irreducible_cfg())


def test_split_irreducible_enables_decomposition():
    g = split_irreducible(_irreducible_cfg())
    loops = find_loops(g)  # must not raise
    assert loops, "after splitting, the cyclic region is a single-entry loop"
    g2, _ = insert_loop_controls(g)
    g2.validate()


def test_loop_controls_preserve_original_nodes():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    g, _ = insert_loop_controls(cfg)
    for nid, node in cfg.nodes.items():
        assert nid in g.nodes
        assert g.node(nid).kind == node.kind


def test_original_graph_unmodified():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    n_nodes = len(cfg.nodes)
    insert_loop_controls(cfg)
    assert len(cfg.nodes) == n_nodes
