"""Tests for the conventional CFG optimizations."""

import pytest

from repro.bench.generators import random_program, random_structured_program
from repro.bench.programs import CORPUS
from repro.cfg import NodeKind, build_cfg, optimize_cfg
from repro.cfg.optimize import fold_expr
from repro.interp import run_ast, run_cfg
from repro.lang import parse
from repro.lang.parser import parse as parse_prog
from repro.translate import compile_program, simulate


def expr_of(src):
    return parse_prog(f"q := {src};").body[0].expr


def assigns(cfg):
    return [n for n in cfg.nodes.values() if n.kind is NodeKind.ASSIGN]


def test_fold_expr_arithmetic():
    from repro.lang import IntLit

    assert fold_expr(expr_of("1 + 2 * 3")) == IntLit(7)
    assert fold_expr(expr_of("10 / 0")) == IntLit(0)  # shared total semantics
    assert fold_expr(expr_of("-(2 + 3)")) == IntLit(-5)
    assert fold_expr(expr_of("1 < 2")) == IntLit(1)


def test_fold_expr_partial():
    e = fold_expr(expr_of("x + (2 * 3)"))
    from repro.lang import BinOp, IntLit, Var

    assert e == BinOp("+", Var("x"), IntLit(6))


def test_constant_propagation_chain():
    src = "a := 2; b := a + 3; c := b * a; r := c;"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    # everything folds: each assignment stores a literal
    from repro.lang import IntLit

    for n in assigns(cfg):
        assert isinstance(n.expr, IntLit), n.describe()
    assert report.propagated > 0
    prog = parse(src)
    assert run_cfg(cfg, prog) == run_ast(prog)


def test_input_variables_block_propagation():
    src = "b := x + 1; c := b;"
    cfg, _ = optimize_cfg(build_cfg(parse(src)))
    from repro.lang import IntLit

    b = next(n for n in assigns(cfg) if n.stores() == {"b"})
    assert not isinstance(b.expr, IntLit)  # x is a runtime input


def test_constant_fork_resolved():
    src = "if 1 < 2 then { y := 1; } else { y := 2; } r := y;"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.forks_resolved == 1
    forks = [
        n
        for n in cfg.nodes.values()
        if n.kind is NodeKind.FORK and n.id != cfg.entry
    ]
    assert forks == []
    # the dead branch is gone
    ys = [n for n in assigns(cfg) if n.stores() == {"y"}]
    assert len(ys) == 1
    prog = parse(src)
    assert run_cfg(cfg, prog)["r"] == 1


def test_propagation_resolves_data_dependent_fork():
    src = "c := 5; if c < 10 then { y := 1; } else { y := 2; }"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.forks_resolved == 1
    assert run_cfg(cfg, parse(src))["y"] == 1


def test_dead_assignment_removed():
    src = "x := 1; x := 2;"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.dead_assignments == 1
    assert len(assigns(cfg)) == 1
    assert run_cfg(cfg, parse(src))["x"] == 2


def test_final_values_are_observable():
    """A variable assigned once and never read is still part of the final
    memory: it must NOT be removed."""
    src = "x := 1;"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.dead_assignments == 0
    assert len(assigns(cfg)) == 1


def test_array_stores_never_removed():
    src = "array a[4]; a[0] := 1; a[0] := 2;"
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.dead_assignments == 0
    assert len(assigns(cfg)) == 2


def test_loop_carried_variable_not_propagated():
    src = """
    x := 0;
    l: x := x + 1;
    if x < 5 then goto l;
    """
    cfg, _ = optimize_cfg(build_cfg(parse(src)))
    prog = parse(src)
    assert run_cfg(cfg, prog) == run_ast(prog)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_optimized_compilation_matches_reference(wl):
    inputs = wl.inputs[0]
    ref = run_ast(parse(wl.source), inputs)
    schema = "schema3_opt" if wl.has_aliasing() else "schema2_opt"
    cp = compile_program(wl.source, schema=schema, optimize=True)
    assert simulate(cp, inputs).memory == ref, wl.name


@pytest.mark.parametrize("seed", range(25))
def test_optimize_preserves_semantics_random(seed):
    for gen in (random_program, random_structured_program):
        prog = gen(seed)
        cfg, _ = optimize_cfg(build_cfg(prog))
        assert run_cfg(cfg, prog) == run_ast(prog), (seed, gen.__name__)


def test_optimize_reduces_work():
    src = """
    a := 2 + 3;
    b := a * 2;
    t := 99;
    t := b;
    if 0 > 1 then { waste := 1; waste := waste * 2; }
    r := t + b;
    """
    cfg, report = optimize_cfg(build_cfg(parse(src)))
    assert report.total() >= 4
    cp_plain = compile_program(src, schema="schema2_opt")
    cp_opt = compile_program(src, schema="schema2_opt", optimize=True)
    assert len(cp_opt.graph.nodes) < len(cp_plain.graph.nodes)
    r1 = simulate(cp_plain)
    r2 = simulate(cp_opt)
    for k in ("a", "b", "t", "r"):
        assert r1.memory[k] == r2.memory[k]
