"""Unit tests for the dataflow-graph IR."""

import pytest

from repro.dfg import DFGError, DFGraph, OpKind, Seed, graph_stats
from repro.dfg.dot import dfg_to_dot
from repro.dfg.nodes import num_inputs, num_outputs


def tiny_graph():
    """start -(access)-> load x -> store y wiring exercise."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "x"),))
    end = g.add(OpKind.END, returns=(None,))
    load = g.add(OpKind.LOAD, var="x")
    store = g.add(OpKind.STORE, var="y")
    g.connect((start.id, 0), load.id, 0, is_access=True)
    g.connect((load.id, 0), store.id, 0)
    g.connect((load.id, 1), store.id, 1, is_access=True)
    g.connect((store.id, 0), end.id, 0, is_access=True)
    return g


def test_port_counts():
    g = DFGraph()
    assert num_inputs(g.add(OpKind.BINOP, op="+")) == 2
    assert num_outputs(g.add(OpKind.LOAD, var="x")) == 2
    assert num_inputs(g.add(OpKind.ASTORE, var="a")) == 3
    assert num_inputs(g.add(OpKind.MERGE, nports=3)) == 3
    assert num_outputs(g.add(OpKind.SWITCH)) == 2
    le = g.add(OpKind.LOOP_ENTRY, loop_id=0, nchannels=2)
    assert num_inputs(le) == 4
    assert num_outputs(le) == 2


def test_valid_tiny_graph():
    tiny_graph().validate()


def test_duplicate_input_port_rejected():
    g = tiny_graph()
    extra = g.add(OpKind.CONST, value=1)
    store = next(n for n in g.nodes.values() if n.kind is OpKind.STORE)
    with pytest.raises(DFGError):
        g.connect((extra.id, 0), store.id, 0)


def test_unconnected_input_detected():
    g = DFGraph()
    g.add(OpKind.START, seeds=())
    g.add(OpKind.END, returns=())
    b = g.add(OpKind.BINOP, op="+")
    with pytest.raises(DFGError):
        g.validate()


def test_dangling_output_detected():
    g = tiny_graph()
    c = g.add(OpKind.CONST, value=5)
    u = g.add(OpKind.UNOP, op="-")
    start = g.node(g.start)
    g.connect((start.id, 0), c.id, 0, is_access=True)
    g.connect((c.id, 0), u.id, 0)
    with pytest.raises(DFGError):
        g.validate()  # u's output dangles
    g.validate(allow_dangling_outputs=True)


def test_connect_to_bad_port_rejected():
    g = DFGraph()
    c = g.add(OpKind.CONST, value=1)
    u = g.add(OpKind.UNOP, op="-")
    with pytest.raises(DFGError):
        g.connect((c.id, 1), u.id, 0)
    with pytest.raises(DFGError):
        g.connect((c.id, 0), u.id, 5)


def test_fan_out_allowed():
    g = DFGraph()
    c = g.add(OpKind.CONST, value=1)
    u1 = g.add(OpKind.UNOP, op="-")
    u2 = g.add(OpKind.UNOP, op="-")
    g.connect((c.id, 0), u1.id, 0)
    g.connect((c.id, 0), u2.id, 0)
    assert len(g.consumers(c.id, 0)) == 2


def test_remove_node_cleans_arcs():
    g = tiny_graph()
    load = next(n for n in g.nodes.values() if n.kind is OpKind.LOAD)
    g.remove_node(load.id)
    assert all(a.src != load.id and a.dst != load.id for a in g.arcs())


def test_copy_independent():
    g = tiny_graph()
    g2 = g.copy()
    g2.add(OpKind.CONST, value=9)
    assert len(g2.nodes) == len(g.nodes) + 1
    assert g.num_arcs() == g2.num_arcs()


def test_stats():
    g = tiny_graph()
    s = graph_stats(g)
    assert s.nodes == 4
    assert s.arcs == 4
    assert s.access_arcs == 3
    assert s.value_arcs == 1
    assert s.loads == 1
    assert s.stores == 1
    assert s.memory_ops == 2
    assert "4 nodes" in s.summary()


def test_dot_export_mentions_all_nodes():
    g = tiny_graph()
    dot = dfg_to_dot(g)
    for nid in g.nodes:
        assert f"n{nid}" in dot
    assert "style=dotted" in dot


def test_two_starts_rejected():
    g = DFGraph()
    g.add(OpKind.START, seeds=())
    with pytest.raises(DFGError):
        g.add(OpKind.START, seeds=())


def test_seed_kind_validated():
    with pytest.raises(DFGError):
        Seed("bogus", "x")
