"""Tests for the batch runner: ordering, pool/serial agreement, caching."""

from repro.bench.harness import corpus_jobs
from repro.bench.programs import workload
from repro.engine import BatchJob, GraphCache, run_batch
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import CompileOptions


def _jobs():
    gcd = workload("gcd")
    fib = workload("fib")
    out = []
    for schema in ("schema1", "schema2_opt", "memory_elim"):
        for ins in gcd.inputs:
            out.append(
                BatchJob(
                    gcd.source,
                    CompileOptions(schema=schema),
                    inputs=dict(ins),
                    name=f"gcd/{schema}/{sorted(ins.items())}",
                )
            )
        out.append(
            BatchJob(
                fib.source,
                CompileOptions(schema=schema),
                inputs={"n": 9},
                name=f"fib/{schema}",
            )
        )
    return out


def test_serial_results_are_ordered_and_correct():
    jobs = _jobs()
    results = run_batch(jobs, pool_size=1, cache=GraphCache())
    assert [r.index for r in results] == list(range(len(jobs)))
    assert [r.name for r in results] == [j.name for j in jobs]
    for job, br in zip(jobs, results):
        assert br.result.memory == run_ast(parse(job.source), job.inputs)


def test_serial_cache_hits_on_repeated_options():
    jobs = _jobs()
    cache = GraphCache()
    results = run_batch(jobs, pool_size=1, cache=cache)
    # gcd has 3 input sets per schema: the 2nd and 3rd hit the cache
    hits = [r.cache_hit for r in results]
    assert hits.count(False) == 6  # 2 programs x 3 schemas compile once
    assert hits.count(True) == len(jobs) - 6
    again = run_batch(jobs, pool_size=1, cache=cache)
    assert all(r.cache_hit for r in again)
    assert all(r.result.cache_hit for r in again)


def test_pool_matches_serial():
    jobs = _jobs()
    serial = run_batch(jobs, pool_size=1, cache=GraphCache())
    pooled = run_batch(jobs, pool_size=2)
    assert [r.name for r in pooled] == [r.name for r in serial]
    for a, b in zip(serial, pooled):
        assert a.result.memory == b.result.memory, a.name
        assert a.result.metrics.cycles == b.result.metrics.cycles, a.name
        assert a.result.metrics.operations == b.result.metrics.operations
        assert a.stats == b.stats


def test_pool_shares_disk_cache(tmp_path):
    jobs = _jobs()
    run_batch(jobs, pool_size=2, cache_dir=tmp_path)
    warm = run_batch(jobs, pool_size=2, cache_dir=tmp_path)
    assert all(r.cache_hit for r in warm)


def test_job_config_is_respected():
    gcd = workload("gcd")
    job = BatchJob(
        gcd.source,
        CompileOptions(schema="schema2_opt"),
        inputs=dict(gcd.inputs[0]),
        config=MachineConfig(num_pes=1),
    )
    (one,) = run_batch([job], cache=GraphCache())
    (wide,) = run_batch(
        [
            BatchJob(
                gcd.source,
                CompileOptions(schema="schema2_opt"),
                inputs=dict(gcd.inputs[0]),
            )
        ],
        cache=GraphCache(),
    )
    assert one.result.memory == wide.result.memory
    assert one.result.metrics.cycles > wide.result.metrics.cycles
    assert not one.result.fast_path and wide.result.fast_path


def test_bad_job_does_not_poison_batch():
    """A job that fails to compile (or simulate) reports its error on its
    own BatchResult; every sibling still completes normally."""
    gcd = workload("gcd")
    jobs = [
        BatchJob(gcd.source, inputs=dict(gcd.inputs[0]), name="good0"),
        BatchJob("x := ;;;; not a program", name="syntax_error"),
        BatchJob(gcd.source, inputs=dict(gcd.inputs[0]), name="good1"),
    ]
    results = run_batch(jobs, pool_size=1, cache=GraphCache())
    assert [r.name for r in results] == ["good0", "syntax_error", "good1"]
    good0, bad, good1 = results
    assert good0.ok and good1.ok
    assert good0.result.memory == run_ast(parse(gcd.source), jobs[0].inputs)
    assert not bad.ok
    assert bad.result is None and bad.stats is None
    assert bad.error and "Error" in bad.error
    assert bad.traceback and "Traceback" in bad.traceback


def test_bad_job_does_not_poison_pool_batch():
    gcd = workload("gcd")
    jobs = [
        BatchJob("x := ;;;; not a program", name="bad"),
        BatchJob(gcd.source, inputs=dict(gcd.inputs[0]), name="good"),
    ]
    bad, good = run_batch(jobs, pool_size=2)
    assert not bad.ok and bad.error
    assert good.ok
    assert good.result.memory == run_ast(parse(gcd.source), jobs[1].inputs)


def test_persistent_pool_reuse(tmp_path):
    """make_pool() + run_batch(pool=...) re-enters one pool across calls;
    workers persist between batches and share the disk cache tier, so a
    repeated batch is all cache hits without respawning anything."""
    from repro.engine import make_pool

    jobs = _jobs()
    pool = make_pool(2, cache_dir=tmp_path)
    try:
        first = run_batch(jobs, pool=pool)
        second = run_batch(jobs, pool=pool)
    finally:
        pool.terminate()
        pool.join()
    assert [r.name for r in first] == [j.name for j in jobs]
    for a, b in zip(first, second):
        assert a.result.memory == b.result.memory
        assert a.result.metrics.cycles == b.result.metrics.cycles
    assert all(r.cache_hit for r in second)


def test_empty_batch():
    assert run_batch([]) == []


def test_corpus_jobs_filters():
    jobs = corpus_jobs(programs=["gcd"], schemas=["schema1", "memory_elim"])
    assert {j.name for j in jobs} == {"gcd/schema1", "gcd/memory_elim"}
    aliased = corpus_jobs(programs=["fortran_alias"])
    assert all("schema2" not in j.name for j in aliased)


def test_serial_cache_dir_is_reused_across_batches(tmp_path):
    """Back-to-back serial run_batch calls naming the same cache_dir
    must share one process-wide cache: the second batch takes *memory*
    hits, not disk reads, and the stats accumulate across calls."""
    from repro.engine import shared_cache

    d = tmp_path / "graphs"
    gcd = workload("gcd")
    jobs = [
        BatchJob(gcd.source, CompileOptions(schema=schema),
                 inputs=dict(gcd.inputs[0]), name=f"gcd/{schema}")
        for schema in ("schema1", "schema2", "schema2_opt", "memory_elim")
    ]
    cold = run_batch(jobs, cache_dir=d)
    assert not any(r.cache_hit for r in cold)
    warm = run_batch(jobs, cache_dir=d)
    assert all(r.cache_hit for r in warm)
    cache = shared_cache(d)
    assert cache is shared_cache(d)  # stable identity per (dir, capacity)
    assert cache.stats.hits >= len(jobs)  # memory tier, not disk
    assert cache.stats.disk_hits == 0
    assert cache.stats.misses == len({  # one compile per distinct graph
        (j.source, j.options.fingerprint()) for j in jobs
    })


def test_traced_job_ships_spans_with_result():
    """A job stamped with a trace id comes back with worker-side spans
    carrying that id — the engine half of end-to-end tracing."""
    from repro.obs.trace import new_trace_id, render_tree

    tid = new_trace_id()
    job = BatchJob("x := 1 + 2;", name="traced", trace_id=tid)
    (br,) = run_batch([job], cache=GraphCache())
    assert br.ok and br.trace_id == tid
    names = [s["name"] for s in br.spans]
    assert "engine.job" in names
    assert "engine.compile" in names
    assert "engine.simulate" in names
    assert "compile.parse" in names  # pipeline stage spans nest inside
    assert all(s["trace_id"] == tid for s in br.spans)
    tree = render_tree(br.spans)
    assert "engine.simulate" in tree and "ms" in tree


def test_untraced_job_records_no_spans():
    job = BatchJob("x := 1;", name="untraced")
    (br,) = run_batch([job], cache=GraphCache())
    assert br.trace_id == "" and br.spans == []
