"""Tests for the content-addressed compiled-graph cache."""

import pickle
import threading
import time

import pytest

from repro.dfg.stats import graph_stats
from repro.engine import GraphCache, graph_key
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import CompileOptions, compile_program, simulate

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def test_key_is_stable_and_content_addressed():
    o = CompileOptions(schema="schema2_opt")
    assert graph_key(SRC, o) == graph_key(SRC, o)
    assert graph_key(SRC, o) != graph_key(SRC + " ", o)
    assert graph_key(SRC, o) != graph_key(SRC, CompileOptions(schema="schema1"))
    # every option knob participates in the key
    assert graph_key(SRC, o) != graph_key(
        SRC, CompileOptions(schema="schema2_opt", parallel_reads=True)
    )


def test_fingerprint_covers_every_field():
    import dataclasses

    fp = CompileOptions().fingerprint()
    for f in dataclasses.fields(CompileOptions):
        assert f.name in fp


def test_memory_hit_returns_same_object():
    cache = GraphCache()
    cp1, hit1 = cache.lookup(SRC, schema="schema1")
    cp2, hit2 = cache.lookup(SRC, schema="schema1")
    assert not hit1 and hit2
    assert cp1 is cp2
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_cached_graph_is_reusable_across_simulations():
    """Simulating must not mutate the cached CompiledProgram: repeated
    runs from one cache entry stay identical to a fresh compile."""
    cache = GraphCache()
    cp = cache.get_or_compile(SRC, schema="schema2_opt")
    a = simulate(cp)
    b = simulate(cp)
    fresh = simulate(compile_program(SRC, schema="schema2_opt"))
    assert a.memory == b.memory == fresh.memory
    assert a.metrics.cycles == b.metrics.cycles == fresh.metrics.cycles
    assert a.metrics.operations == b.metrics.operations == fresh.metrics.operations


def test_lru_eviction():
    cache = GraphCache(capacity=2)
    cache.get_or_compile(SRC, schema="schema1")
    cache.get_or_compile(SRC, schema="schema2")
    cache.get_or_compile(SRC, schema="schema1")  # refresh schema1
    cache.get_or_compile(SRC, schema="schema3")  # evicts schema2
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    _, hit = cache.lookup(SRC, schema="schema1")
    assert hit
    _, hit = cache.lookup(SRC, schema="schema2")
    assert not hit  # was evicted


def test_disk_store_round_trip(tmp_path):
    c1 = GraphCache(cache_dir=tmp_path)
    cp1, hit = c1.lookup(SRC, schema="memory_elim")
    assert not hit and c1.stats.disk_writes == 1
    # a different cache instance (fresh memory tier) hits the disk tier
    c2 = GraphCache(cache_dir=tmp_path)
    cp2, hit = c2.lookup(SRC, schema="memory_elim")
    assert hit and c2.stats.disk_hits == 1
    s1, s2 = graph_stats(cp1.graph), graph_stats(cp2.graph)
    assert s1 == s2
    assert simulate(cp1).memory == simulate(cp2).memory == run_ast(parse(SRC))


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    c1 = GraphCache(cache_dir=tmp_path)
    c1.get_or_compile(SRC, schema="schema1")
    key = graph_key(SRC, CompileOptions(schema="schema1"))
    path = tmp_path / key[:2] / f"{key}.pkl"
    assert path.exists()
    path.write_bytes(b"not a pickle")
    c2 = GraphCache(cache_dir=tmp_path)
    cp, hit = c2.lookup(SRC, schema="schema1")
    assert not hit  # corrupt entry ignored and recompiled
    assert pickle.loads(path.read_bytes())  # and overwritten with a good one
    assert simulate(cp).memory == run_ast(parse(SRC))


def test_truncated_disk_entry_is_unlinked_then_rewritten(tmp_path):
    """A partially-written pickle (e.g. a crash mid-copy) must read as a
    miss, be unlinked, and be replaced by the recompile's fresh write."""
    c1 = GraphCache(cache_dir=tmp_path)
    c1.get_or_compile(SRC, schema="schema2_opt")
    key = graph_key(SRC, CompileOptions(schema="schema2_opt"))
    path = tmp_path / key[:2] / f"{key}.pkl"
    good = path.read_bytes()
    path.write_bytes(good[: len(good) // 2])  # truncate

    c2 = GraphCache(cache_dir=tmp_path)
    # the raw read drops the bad file entirely (no exception, no entry)
    assert c2._disk_read(key) is None
    assert not path.exists()
    # ... and a full lookup recompiles and restores a loadable entry
    cp, hit = c2.lookup(SRC, schema="schema2_opt")
    assert not hit
    assert pickle.loads(path.read_bytes())
    assert simulate(cp).memory == run_ast(parse(SRC))


def test_wrong_type_disk_entry_is_unlinked(tmp_path):
    c = GraphCache(cache_dir=tmp_path)
    key = graph_key(SRC, CompileOptions(schema="schema1"))
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"not": "a CompiledProgram"}))
    assert c._disk_read(key) is None
    assert not path.exists()


def test_clear_disk(tmp_path):
    c = GraphCache(cache_dir=tmp_path)
    c.get_or_compile(SRC, schema="schema1")
    c.clear(disk=True)
    assert len(c) == 0
    c2 = GraphCache(cache_dir=tmp_path)
    _, hit = c2.lookup(SRC, schema="schema1")
    assert not hit


def test_clear_disk_sweeps_orphaned_tmp_files(tmp_path):
    """An interrupted atomic write leaves a ``*.tmp`` alongside the
    entries; ``clear(disk=True)`` must sweep those orphans too."""
    c = GraphCache(cache_dir=tmp_path)
    c.get_or_compile(SRC, schema="schema1")
    key = graph_key(SRC, CompileOptions(schema="schema1"))
    orphan = tmp_path / key[:2] / f"{key}.pklstale123.tmp"
    orphan.write_bytes(b"half-written entry")
    c.clear(disk=True)
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
    assert leftovers == []  # no pickles, no tmp orphans


def test_single_flight_coalesces_concurrent_misses(monkeypatch):
    """8 threads missing on the same key must trigger exactly one
    compile — the others wait for the leader and take memory hits."""
    from repro.engine import cache as cache_mod

    real_compile = cache_mod.compile_program
    calls = []
    call_lock = threading.Lock()

    def slow_compile(source, options=None, **kwargs):
        with call_lock:
            calls.append(threading.get_ident())
        time.sleep(0.05)  # hold the miss window open for every thread
        return real_compile(source, options=options, **kwargs)

    monkeypatch.setattr(cache_mod, "compile_program", slow_compile)
    cache = GraphCache()
    barrier = threading.Barrier(8)
    results = []
    errors = []

    def work():
        try:
            barrier.wait()
            results.append(cache.lookup(SRC, schema="schema2_opt"))
        except BaseException as exc:  # pragma: no cover - debug aid
            errors.append(exc)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(calls) == 1, f"expected one compile, got {len(calls)}"
    assert cache.stats.misses == 1 and cache.stats.hits == 7
    assert cache.stats.lookups == 8
    compiled = {id(cp) for cp, _ in results}
    assert len(compiled) == 1  # everyone got the leader's object


def test_single_flight_leader_failure_releases_waiters(monkeypatch):
    """If the leading compile raises, waiters must not hang — one of
    them retries (and the retry can succeed)."""
    from repro.engine import cache as cache_mod

    real_compile = cache_mod.compile_program
    attempts = []
    lock = threading.Lock()

    def flaky_compile(source, options=None, **kwargs):
        with lock:
            attempts.append(None)
            first = len(attempts) == 1
        time.sleep(0.02)
        if first:
            raise RuntimeError("transient leader failure")
        return real_compile(source, options=options, **kwargs)

    monkeypatch.setattr(cache_mod, "compile_program", flaky_compile)
    cache = GraphCache()
    barrier = threading.Barrier(3)
    outcomes = []

    def work():
        barrier.wait()
        try:
            outcomes.append(cache.lookup(SRC, schema="schema1"))
        except RuntimeError:
            outcomes.append(None)

    threads = [threading.Thread(target=work) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads), "waiter hung"
    good = [o for o in outcomes if o is not None]
    assert good, "no lookup recovered after the leader failed"
    assert all(cp.graph is good[0][0].graph for cp, _ in good)


def test_options_and_kwargs_are_exclusive():
    cache = GraphCache()
    with pytest.raises(TypeError):
        cache.lookup(SRC, CompileOptions(), schema="schema1")
    with pytest.raises(TypeError):
        compile_program(SRC, options=CompileOptions(), parallel_reads=True)


def test_compile_program_options_object_matches_kwargs():
    a = compile_program(SRC, options=CompileOptions(schema="schema1"))
    b = compile_program(SRC, schema="schema1")
    assert graph_stats(a.graph) == graph_stats(b.graph)
