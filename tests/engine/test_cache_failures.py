"""Failure-path suite for the graph cache: degraded disk tiers, failed
unlinks, leader hand-off after a crash mid-compile, and management ops
on vanished directories.  Every scenario must degrade — never raise out
of ``lookup`` for infrastructure reasons, never serve a wrong graph."""

import threading

from repro.engine import GraphCache, graph_key
from repro.translate import CompileOptions, simulate

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""
OPTS = CompileOptions(schema="schema1")


def test_file_as_cache_dir_degrades_to_memory_only(tmp_path):
    """A cache_dir that turns out to be a regular file (bad config,
    clobbered mount) must not break lookups: compiles succeed, nothing
    is written, and the memory tier still serves repeats."""
    bogus = tmp_path / "cachefile"
    bogus.write_text("i am not a directory")
    cache = GraphCache(cache_dir=bogus)
    cp, was_cached = cache.lookup(SRC, OPTS)
    assert not was_cached
    assert simulate(cp, None).memory["x"] == 5
    assert cache.stats.disk_writes == 0  # write path degraded silently
    _, again = cache.lookup(SRC, OPTS)
    assert again and cache.stats.hits == 1
    assert bogus.read_text() == "i am not a directory"  # untouched


def test_corrupt_entry_with_failed_unlink_is_still_a_miss(
    tmp_path, monkeypatch
):
    """Corrupt disk entry *and* the unlink of it fails (e.g. directory
    write-protected while files are readable): the lookup must still be
    a clean miss that recompiles."""
    from repro.engine import cache as cache_mod

    cache = GraphCache(cache_dir=tmp_path)
    key = graph_key(SRC, OPTS)
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"\x80garbage")

    def refuse_unlink(p, *a, **kw):
        raise OSError("unlink refused")

    monkeypatch.setattr(cache_mod.os, "unlink", refuse_unlink)
    cp, was_cached = cache.lookup(SRC, OPTS)
    assert not was_cached
    assert cache.stats.misses == 1
    assert simulate(cp, None).memory["x"] == 5


def test_waiter_becomes_leader_after_leader_crash_and_caches(
    monkeypatch,
):
    """Single-flight hand-off: the leader dies mid-compile, a released
    waiter re-runs the lookup as the new leader, and the eventual entry
    lands in the memory tier for everyone after."""
    from repro.engine import cache as cache_mod

    real_compile = cache_mod.compile_program
    started = threading.Event()
    release = threading.Event()
    calls = []

    def scripted_compile(source, options=None, **kwargs):
        calls.append(threading.get_ident())
        if len(calls) == 1:
            started.set()
            release.wait(5)
            raise RuntimeError("leader crashed")
        return real_compile(source, options=options, **kwargs)

    monkeypatch.setattr(cache_mod, "compile_program", scripted_compile)
    cache = GraphCache()
    results = {}

    def leader():
        try:
            cache.lookup(SRC, OPTS)
        except RuntimeError:
            results["leader"] = "crashed"

    def waiter():
        started.wait(5)  # guarantee we arrive second
        results["waiter"] = cache.lookup(SRC, OPTS)

    t1 = threading.Thread(target=leader)
    t2 = threading.Thread(target=waiter)
    t1.start()
    t2.start()
    # let the waiter park on the in-flight event before the crash
    started.wait(5)
    import time

    time.sleep(0.05)
    release.set()
    t1.join(10)
    t2.join(10)
    assert not t1.is_alive() and not t2.is_alive()
    assert results["leader"] == "crashed"
    cp, was_cached = results["waiter"]
    assert not was_cached  # the waiter recompiled, it did not inherit
    assert len(calls) == 2 and calls[0] != calls[1]
    # and the recovery populated the cache for later lookups
    _, hit = cache.lookup(SRC, OPTS)
    assert hit and cache.stats.hits == 1


def test_clear_disk_on_missing_dir_is_a_noop(tmp_path):
    cache = GraphCache(cache_dir=tmp_path / "never-created")
    cache.clear(disk=True)  # must not raise
    assert len(cache) == 0


def test_disk_dir_deleted_between_runs_recreates_itself(tmp_path):
    import shutil

    warm = GraphCache(cache_dir=tmp_path)
    warm.lookup(SRC, OPTS)
    assert warm.stats.disk_writes == 1
    shutil.rmtree(tmp_path)
    cold = GraphCache(cache_dir=tmp_path)
    cp, was_cached = cold.lookup(SRC, OPTS)
    assert not was_cached  # FileNotFoundError path == plain miss
    assert cold.stats.disk_writes == 1  # and the write re-made the dir
    assert any(tmp_path.rglob("*.pkl"))


def test_unreadable_entry_is_a_miss(tmp_path, monkeypatch):
    """open() raising OSError (EACCES, EIO) on the entry is a miss —
    root can read anything, so simulate the error instead of chmod."""
    from repro.engine import cache as cache_mod

    cache = GraphCache(cache_dir=tmp_path)
    key = graph_key(SRC, OPTS)
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"whatever")
    real_open = open

    def flaky_open(file, *args, **kwargs):
        if str(file) == str(path):
            raise OSError("I/O error")
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr("builtins.open", flaky_open)
    cp, was_cached = cache.lookup(SRC, OPTS)
    assert not was_cached and cache.stats.misses == 1
    assert simulate(cp, None).memory["x"] == 5
