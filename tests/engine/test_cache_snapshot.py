"""Snapshot/restore tests for the compiled-graph cache.

The snapshot is what makes a restarted (or ``kill -9``'d) server come up
warm: entry files in the v3 on-disk layout plus a manifest written
atomically last as the commit point.  These tests pin the crash
contract — an interrupted snapshot leaves the previous one loadable, a
corrupt or truncated snapshot degrades to a cold start, never a crash.
"""

import json
import os

from repro.engine import GraphCache
from repro.engine.cache import SNAPSHOT_MANIFEST, graph_key
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import CompileOptions, simulate

SRC_A = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""
SRC_B = "a := 2;\nb := a * 21;\n"


def _warm_cache():
    cache = GraphCache()
    cache.get_or_compile(SRC_A, schema="schema2_opt")
    cache.get_or_compile(SRC_B, schema="schema1")
    return cache


def test_snapshot_restore_round_trip(tmp_path):
    cache = _warm_cache()
    state = {"tiers": {"v": 1, "graphs": {"k" * 64: {"tier": "packed",
                                                     "hits": 9,
                                                     "hotness": 4.5}}}}
    n = cache.snapshot(tmp_path, state=state)
    assert n == 2
    manifest = json.loads((tmp_path / SNAPSHOT_MANIFEST).read_text())
    assert len(manifest["keys"]) == 2

    fresh = GraphCache()
    loaded, got_state = fresh.restore(tmp_path)
    assert loaded == 2
    assert got_state == state
    # restored entries are memory hits and run-ready (packed blob baked)
    cp, hit = fresh.lookup(SRC_A, schema="schema2_opt")
    assert hit
    assert cp.packed is not None
    assert simulate(cp).memory == run_ast(parse(SRC_A))


def test_snapshot_without_state_restores_empty_state(tmp_path):
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    _, state = GraphCache().restore(tmp_path)
    assert state == {}


def test_restore_missing_or_corrupt_manifest_is_cold_start(tmp_path):
    assert GraphCache().restore(tmp_path / "nowhere") == (0, {})
    (tmp_path / SNAPSHOT_MANIFEST).write_text("{not json")
    assert GraphCache().restore(tmp_path) == (0, {})
    (tmp_path / SNAPSHOT_MANIFEST).write_text('["a", "list"]')
    assert GraphCache().restore(tmp_path) == (0, {})


def test_restore_wrong_format_is_cold_start(tmp_path):
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    path = tmp_path / SNAPSHOT_MANIFEST
    manifest = json.loads(path.read_text())
    manifest["format"] = "v0-from-the-future"
    path.write_text(json.dumps(manifest))
    assert GraphCache().restore(tmp_path) == (0, {})


def test_restore_skips_truncated_entry_loads_the_rest(tmp_path):
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    key = graph_key(SRC_A, CompileOptions(schema="schema2_opt"))
    entry = tmp_path / key[:2] / f"{key}.pkl"
    entry.write_bytes(entry.read_bytes()[:20])

    fresh = GraphCache()
    loaded, _ = fresh.restore(tmp_path)
    assert loaded == 1  # the good entry
    _, hit = fresh.lookup(SRC_B, schema="schema1")
    assert hit
    _, hit = fresh.lookup(SRC_A, schema="schema2_opt")
    assert not hit  # truncated entry was skipped, not crashed on


def test_restore_tolerates_bogus_manifest_keys(tmp_path):
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    path = tmp_path / SNAPSHOT_MANIFEST
    manifest = json.loads(path.read_text())
    manifest["keys"] += ["", 42, "f" * 64]  # empty, non-str, missing file
    path.write_text(json.dumps(manifest))
    loaded, _ = GraphCache().restore(tmp_path)
    assert loaded == 2


def test_interrupted_snapshot_keeps_previous_manifest(tmp_path, monkeypatch):
    """A crash mid-snapshot — simulated by the manifest rename failing —
    must leave the previous snapshot fully loadable: entry files are
    content-addressed and never deleted, and the manifest is only
    replaced atomically at the very end."""
    cache = GraphCache()
    cache.get_or_compile(SRC_A, schema="schema2_opt")
    assert cache.snapshot(tmp_path, state={"gen": 1}) == 1
    before = (tmp_path / SNAPSHOT_MANIFEST).read_bytes()

    cache.get_or_compile(SRC_B, schema="schema1")
    real_replace = os.replace

    def failing_replace(src, dst, *a, **kw):
        if os.path.basename(str(dst)) == SNAPSHOT_MANIFEST:
            raise OSError("disk full at the commit point")
        return real_replace(src, dst, *a, **kw)

    monkeypatch.setattr(os, "replace", failing_replace)
    assert cache.snapshot(tmp_path, state={"gen": 2}) == 0
    monkeypatch.undo()

    # previous manifest untouched, previous snapshot loads
    assert (tmp_path / SNAPSHOT_MANIFEST).read_bytes() == before
    loaded, state = GraphCache().restore(tmp_path)
    assert loaded == 1
    assert state == {"gen": 1}
    # no half-written manifest temp files left behind
    assert not list(tmp_path.glob(f"{SNAPSHOT_MANIFEST}*.tmp"))

    # the next attempt commits generation 2
    assert cache.snapshot(tmp_path, state={"gen": 2}) == 2
    loaded, state = GraphCache().restore(tmp_path)
    assert loaded == 2
    assert state == {"gen": 2}


def test_snapshot_skips_existing_entry_files(tmp_path):
    """Entries are content-addressed and immutable: a second snapshot
    re-lists existing files without rewriting them."""
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    key = graph_key(SRC_A, CompileOptions(schema="schema2_opt"))
    entry = tmp_path / key[:2] / f"{key}.pkl"
    mtime = entry.stat().st_mtime_ns
    assert cache.snapshot(tmp_path) == 2
    assert entry.stat().st_mtime_ns == mtime


def test_snapshot_dir_doubles_as_disk_cache_layout(tmp_path):
    """The snapshot uses the v3 entry layout, so a snapshot directory is
    a valid ``cache_dir``: disk lookups hit the snapshotted entries."""
    cache = _warm_cache()
    cache.snapshot(tmp_path)
    disk = GraphCache(cache_dir=tmp_path)
    _, hit = disk.lookup(SRC_A, schema="schema2_opt")
    assert hit
    assert disk.stats.disk_hits == 1
