"""The differential-testing layer (WaveCert-style translation validation,
applied to the engine's own shortcuts).

Two families of equivalences, over every corpus program × every legal
schema:

* **cached-compile ≡ fresh-compile** — a graph served from the engine
  cache (memory or disk tier) is structurally identical to one compiled
  from source, and simulates identically;
* **fast-path ≡ per-cycle** — the event-driven fast loop produces the
  same final memory, operation counts, and cycle counts as the per-cycle
  scheduler (the seed implementation's loop), across ≥3 scheduler seeds.
"""

import pytest

from repro.bench.harness import schemas_for
from repro.bench.programs import CORPUS
from repro.dfg.stats import graph_stats
from repro.engine import GraphCache
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

SEEDS = (0, 1, 2)

_CACHE = GraphCache()


def _assert_same_run(a, b, tag):
    assert a.memory == b.memory, tag
    assert a.end_values == b.end_values, tag
    assert a.metrics.operations == b.metrics.operations, tag
    assert a.metrics.cycles == b.metrics.cycles, tag
    assert a.metrics.by_kind == b.metrics.by_kind, tag
    assert a.metrics.memory_ops == b.metrics.memory_ops, tag
    assert a.metrics.clashes == b.metrics.clashes, tag


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_cached_compile_equals_fresh_compile(wl, tmp_path):
    disk = GraphCache(cache_dir=tmp_path)
    for schema in schemas_for(wl):
        fresh = compile_program(wl.source, schema=schema)
        cached = _CACHE.get_or_compile(wl.source, schema=schema)
        from_disk_cold = disk.get_or_compile(wl.source, schema=schema)
        disk._mem.clear()  # force the next lookup through the disk tier
        from_disk, hit = disk.lookup(wl.source, schema=schema)
        assert hit
        want = graph_stats(fresh.graph)
        for other in (cached, from_disk_cold, from_disk):
            assert graph_stats(other.graph) == want, (wl.name, schema)
        inputs = wl.inputs[0]
        _assert_same_run(
            simulate(fresh, inputs),
            simulate(from_disk, inputs),
            (wl.name, schema, "cached-vs-fresh"),
        )


@pytest.mark.slow
@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_fast_path_equals_per_cycle(wl):
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        inputs = wl.inputs[0]
        fast = simulate(cp, inputs, MachineConfig(sim_mode="fast"))
        assert fast.fast_path
        for seed in SEEDS:
            step = simulate(
                cp, inputs, MachineConfig(sim_mode="step", seed=seed)
            )
            assert not step.fast_path
            _assert_same_run(
                fast, step, (wl.name, schema, f"seed={seed}")
            )
            # the sampled resource peaks agree too: the fast loop visits
            # the same (clock, deliver, fire) checkpoints
            assert (
                fast.metrics.peak_tokens_in_flight
                == step.metrics.peak_tokens_in_flight
            ), (wl.name, schema, seed)
            assert fast.metrics.peak_enabled == step.metrics.peak_enabled
            assert (
                fast.metrics.profile == step.metrics.profile
            ), (wl.name, schema, seed)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_auto_mode_picks_fast_only_when_exact(wl):
    cp = _CACHE.get_or_compile(wl.source, schema="memory_elim")
    inputs = wl.inputs[0]
    assert simulate(cp, inputs).fast_path  # idealized machine: fast loop
    finite = simulate(cp, inputs, MachineConfig(num_pes=2))
    assert not finite.fast_path  # PE arbitration forces per-cycle stepping
    bounded = simulate(cp, inputs, MachineConfig(loop_bound=1))
    assert not bounded.fast_path  # k-bounding forces per-cycle stepping
    ref = simulate(cp, inputs, MachineConfig(sim_mode="step"))
    assert finite.memory == bounded.memory == ref.memory


def test_fast_mode_rejects_stateful_configs():
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="fast", num_pes=2)
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="fast", loop_bound=1)
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="bogus")
