"""Tests for the shared percentile / latency-summary helper."""

import pytest

from repro.engine import LatencySummary, percentile


def test_percentile_single_sample():
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 50) == 7.0
    assert percentile([7.0], 100) == 7.0


def test_percentile_endpoints_and_median():
    xs = [4.0, 1.0, 3.0, 2.0]  # order must not matter
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 100) == 4.0
    assert percentile(xs, 50) == 2.5  # interpolated between 2 and 3


def test_percentile_linear_interpolation():
    xs = list(range(0, 101))  # 0..100, rank == value
    for q in (0, 25, 50, 90, 95, 99, 100):
        assert percentile([float(x) for x in xs], q) == pytest.approx(q)
    # a fractional rank interpolates: p95 of [0,10] is 9.5
    assert percentile([0.0, 10.0], 95) == pytest.approx(9.5)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_bad_q():
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_summary_empty_is_all_zero():
    s = LatencySummary.from_samples([])
    assert s.count == 0
    assert s.mean == s.p50 == s.p95 == s.p99 == s.max == 0.0
    assert s.brief() == "n=0"
    assert s.to_json()["count"] == 0


def test_summary_from_samples():
    s = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.p50 == pytest.approx(2.5)
    assert s.max == 4.0
    assert s.p95 <= s.p99 <= s.max
    j = s.to_json()
    assert set(j) == {"count", "mean", "p50", "p95", "p99", "max"}
    assert "p50=" in s.brief("ms")
