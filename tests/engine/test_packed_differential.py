"""Differential suite for the flat backends (packed and vectorized).

The flat-array interpreter (:class:`~repro.machine.packed.PackedSimulator`)
and the bulk-firing vectorized interpreter
(:class:`~repro.machine.vectorized.VectorizedSimulator`) claim
*bit-identical observables* with the reference simulator: final memory,
``end_values``, every :class:`~repro.machine.metrics.Metrics` field
including the parallelism profile and sampled resource peaks, and the
recorded clash list (contents *and* order).  This suite holds both to
that across the full corpus × every legal schema × every input set, in
clash-record mode, on the raise path, with and without numpy, and
through the pooled engine.
"""

import pytest

from repro.bench.harness import corpus_jobs, schemas_for

pytestmark = pytest.mark.slow  # full corpus × schemas × inputs sweep
from repro.bench.programs import CORPUS, RUNNING_EXAMPLE
from repro.dfg.nodes import OpKind
from repro.engine import GraphCache, run_batch
from repro.machine import MachineConfig, TokenClashError
from repro.translate import compile_program, simulate

_CACHE = GraphCache()


def _assert_identical(a, b, tag, peaks_vs_fast=False):
    """a = packed run, b = reference run."""
    assert a.memory == b.memory, tag
    assert a.end_values == b.end_values, tag
    ma, mb = a.metrics, b.metrics
    assert ma.cycles == mb.cycles, tag
    assert ma.operations == mb.operations, tag
    assert ma.by_kind == mb.by_kind, tag
    assert ma.memory_ops == mb.memory_ops, tag
    assert ma.switch_ops == mb.switch_ops, tag
    assert ma.merge_ops == mb.merge_ops, tag
    assert ma.synch_ops == mb.synch_ops, tag
    assert ma.clashes == mb.clashes, tag
    assert a.clashes == b.clashes, tag
    assert ma.profile == mb.profile, tag
    assert ma.peak_tokens_in_flight == mb.peak_tokens_in_flight, tag
    assert ma.peak_enabled == mb.peak_enabled, tag
    if peaks_vs_fast:
        # the waiting-frame peak is sampled at loop checkpoints, so it is
        # only pinned against the loop the packed interpreter mirrors
        assert ma.peak_waiting_frames == mb.peak_waiting_frames, tag


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_packed_equals_step_full_corpus(wl):
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        for inputs in wl.inputs:
            packed = simulate(cp, inputs, MachineConfig(sim_mode="packed"))
            assert packed.backend == "packed" and packed.fast_path
            step = simulate(cp, inputs, MachineConfig(sim_mode="step"))
            assert step.backend == "step" and not step.fast_path
            _assert_identical(packed, step, (wl.name, schema))


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_packed_equals_fast_including_peaks(wl):
    """The packed loop mirrors the event-driven fast loop checkpoint for
    checkpoint, so even the sampled occupancy timeline must agree."""
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        inputs = wl.inputs[0]
        packed = simulate(cp, inputs, MachineConfig(sim_mode="packed"))
        fast = simulate(cp, inputs, MachineConfig(sim_mode="fast"))
        assert fast.backend == "fast"
        _assert_identical(packed, fast, (wl.name, schema), peaks_vs_fast=True)
        assert [tuple(s) for s in packed.occupancy] == [
            tuple(s) for s in fast.occupancy
        ], (wl.name, schema)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_vectorized_equals_step_full_corpus(wl):
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        for inputs in wl.inputs:
            vec = simulate(cp, inputs, MachineConfig(sim_mode="vectorized"))
            assert vec.backend == "vectorized" and vec.fast_path
            step = simulate(cp, inputs, MachineConfig(sim_mode="step"))
            _assert_identical(vec, step, (wl.name, schema))


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_vectorized_equals_packed_including_peaks(wl):
    """The vectorized loop drains its cycle buckets at the same
    checkpoints the packed loop drains its heap, so the sampled
    occupancy timeline and the waiting-frame peak must also agree."""
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        inputs = wl.inputs[0]
        vec = simulate(cp, inputs, MachineConfig(sim_mode="vectorized"))
        packed = simulate(cp, inputs, MachineConfig(sim_mode="packed"))
        _assert_identical(vec, packed, (wl.name, schema),
                          peaks_vs_fast=True)
        assert [tuple(s) for s in vec.occupancy] == [
            tuple(s) for s in packed.occupancy
        ], (wl.name, schema)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_vectorized_no_numpy_equals_step(wl, monkeypatch):
    """The pure-python bulk path (REPRO_NO_NUMPY=1) is held to the same
    bit-identity bar as the numpy fast path."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        inputs = wl.inputs[0]
        vec = simulate(cp, inputs, MachineConfig(sim_mode="vectorized"))
        step = simulate(cp, inputs, MachineConfig(sim_mode="step"))
        _assert_identical(vec, step, (wl.name, schema, "no-numpy"))


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_packed_clash_record_mode_full_corpus(wl):
    """on_clash="record" is exact on the packed backend too (valid graphs
    record zero clashes, but the mode must not perturb anything)."""
    for schema in schemas_for(wl):
        cp = _CACHE.get_or_compile(wl.source, schema=schema)
        inputs = wl.inputs[0]
        packed = simulate(
            cp, inputs, MachineConfig(sim_mode="packed", on_clash="record")
        )
        step = simulate(
            cp, inputs, MachineConfig(sim_mode="step", on_clash="record")
        )
        _assert_identical(packed, step, (wl.name, schema))


def _fig08_clashing_program():
    """Schema 2 without loop control and a slow y-store: x's chain races
    into the next iteration while y still holds its tokens — real
    same-tag clashes (the Section 3 demonstration)."""
    cp = compile_program(
        RUNNING_EXAMPLE.source, schema="schema2", insert_loops=False
    )
    for node in cp.graph.nodes.values():
        if node.kind is OpKind.STORE and node.var == "y":
            node.latency = 60
    return cp


@pytest.mark.parametrize("mode", ["packed", "vectorized"])
def test_clash_record_ordering_matches_step(mode):
    """Real clashes: the flat backends' overflow deques must replay the
    reference per-port deques exactly — same clash count, same (node,
    port, context) reports, same order, same final state."""
    cp = _fig08_clashing_program()
    flat = simulate(
        cp,
        None,
        MachineConfig(sim_mode=mode, on_clash="record", memory_latency=8),
    )
    step = simulate(
        cp,
        None,
        MachineConfig(sim_mode="step", on_clash="record", memory_latency=8),
    )
    assert flat.metrics.clashes >= 2  # deques hold more than one extra
    _assert_identical(flat, step, f"fig08-record-{mode}")


@pytest.mark.parametrize("mode", ["packed", "vectorized"])
def test_clash_raise_matches_step(mode):
    cp = _fig08_clashing_program()
    with pytest.raises(TokenClashError) as flat_err:
        simulate(cp, None, MachineConfig(sim_mode=mode, memory_latency=8))
    with pytest.raises(TokenClashError) as step_err:
        simulate(cp, None, MachineConfig(sim_mode="step", memory_latency=8))
    assert str(flat_err.value) == str(step_err.value)


def test_auto_prefers_flat_only_when_exact():
    cp = _CACHE.get_or_compile(RUNNING_EXAMPLE.source, schema="schema2_opt")
    auto = simulate(cp, None)
    assert auto.backend == "vectorized" and auto.fast_path
    finite = simulate(cp, None, MachineConfig(num_pes=2))
    assert finite.backend == "step"
    bounded = simulate(cp, None, MachineConfig(loop_bound=1))
    assert bounded.backend == "step"
    forced = simulate(cp, None, MachineConfig(sim_mode="fast"))
    assert forced.backend == "fast"
    forced_packed = simulate(cp, None, MachineConfig(sim_mode="packed"))
    assert forced_packed.backend == "packed"
    assert (auto.memory == finite.memory == bounded.memory
            == forced.memory == forced_packed.memory)


def test_pooled_packed_equals_serial(tmp_path):
    """run_batch through a real pool (parent-compiled, payload-shipped)
    returns exactly what the serial loop returns, in job order."""
    jobs = corpus_jobs(programs=["running_example", "gcd", "array_loop"])
    assert jobs
    serial = run_batch(jobs, cache=GraphCache())
    pooled = run_batch(
        jobs, pool_size=2, cache=GraphCache(), cache_dir=tmp_path
    )
    assert len(serial) == len(pooled) == len(jobs)
    for i, (s, p) in enumerate(zip(serial, pooled)):
        assert s.ok and p.ok, (s.error, p.error)
        assert s.index == p.index == i
        assert p.result.backend == "vectorized"  # auto on idealized config
        _assert_identical(p.result, s.result, jobs[i].name)
