"""Region memoization through the graph cache: incremental
invalidation, byte-accounted LRU eviction, the peek/insert surface, and
the pooled cold-region fan-out."""

import dataclasses

import pytest

from repro.dfg.stats import graph_stats
from repro.engine import GraphCache, make_pool
from repro.lang import parse
from repro.lang.ast_nodes import IntLit
from repro.lang.pretty import pretty
from repro.translate import CompileOptions, compile_program
from repro.translate.regions import _region_options, plan_regions
from repro.validate.progen import GenKnobs, generate

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _opts(**kw):
    kw.setdefault("schema", "schema2_opt")
    kw.setdefault("region_compile", "on")
    kw.setdefault("region_target_stmts", 4)
    return CompileOptions(**kw)


def _normalized_giant(seed=0, n_stmts=60):
    """A progen program re-rendered by ``pretty`` with an explicit
    ``var`` line, so textual edits below reproduce exactly what the
    region planner slices and cannot reorder interface headers (an
    undeclared program's variable order is body-first-appearance, which
    an expression edit can shift — see ``Program.with_declared_variables``)."""
    gp = generate(seed, GenKnobs.giant(n_stmts=n_stmts))
    return pretty(parse(gp.source).with_declared_variables())


# --------------------------------------------------------------------------
# memoization


def test_whole_program_and_regions_both_cached():
    cache = GraphCache()
    src = _normalized_giant()
    opts = _opts()
    cp, hit = cache.lookup(src, opts)
    assert not hit
    n_regions = cp.pass_log[0].metrics["regions"]
    assert n_regions >= 2
    # one entry per region + the stitched whole-program entry
    assert len(cache) == n_regions + 1
    # the second lookup is a single whole-key memory hit
    before = cache.stats.hits
    cp2, hit2 = cache.lookup(src, opts)
    assert hit2 and cp2 is cp
    assert cache.stats.hits == before + 1


def test_incremental_edit_recompiles_one_region():
    """A 1-line edit must hit every untouched region's cache entry and
    recompile exactly the region whose slice contains the edit."""
    cache = GraphCache()
    src = _normalized_giant()
    opts = _opts()
    cp, _ = cache.lookup(src, opts)
    n_regions = cp.pass_log[0].metrics["regions"]
    assert cp.pass_log[0].metrics["region_cache_hits"] == 0

    prog = parse(src)
    plan = plan_regions(prog, opts)
    assert plan is not None and len(plan.spans) == n_regions

    # edit one top-level statement per region: rewrite an unlabelled
    # assignment's expression to a constant (keeps variables/labels, so
    # the header — the interface signature — is unchanged)
    editable = [
        (lo, hi, i)
        for lo, hi in plan.spans
        for i in range(lo, hi)
        if prog.body[i].label is None
        and getattr(prog.body[i], "expr", None) is not None
    ]
    # one edit site per region, at most 4 regions
    seen_spans = set()
    sites = []
    for lo, hi, i in editable:
        if (lo, hi) not in seen_spans:
            seen_spans.add((lo, hi))
            sites.append((lo, hi, i))
    assert len(sites) >= 2
    for lo, hi, idx in sites[:4]:
        prog.body[idx] = dataclasses.replace(
            prog.body[idx], expr=IntLit(value=idx + 40)
        )
        edited = pretty(prog)
        plan2 = plan_regions(parse(edited), opts)
        assert plan2 is not None
        assert plan2.spans == plan.spans  # the partition is stable
        # exactly one region source changed, the one holding stmt idx
        changed = [
            j for j, (a, b) in enumerate(zip(plan.sources, plan2.sources))
            if a != b
        ]
        assert changed == [next(
            j for j, (a, b) in enumerate(plan.spans) if a <= idx < b
        )]

        ecp, hit = cache.lookup(edited, opts)
        assert not hit  # the whole-program key is new
        assert ecp.pass_log[0].metrics["region_cache_hits"] == n_regions - 1
        fresh = compile_program(edited, options=_opts(region_compile="off"))
        assert graph_stats(ecp.graph) == graph_stats(fresh.graph)
        plan = plan2  # subsequent edits stack on the edited program


def test_declared_header_order_survives_first_reference_edits():
    """Rewriting the statement holding a variable's *first* reference
    must not reorder region interface headers.  Headers follow
    ``Program.variables()`` order (bit-identity with the monolithic
    compile demands it); on an undeclared program that order is
    body-first-appearance, so such an edit would shift it and
    conservatively invalidate every region key.  The explicit ``var``
    line pins the order, keeping the invalidation region-local."""
    opts = _opts()
    src = _normalized_giant(n_stmts=200)
    prog = parse(src)
    assert prog.scalars  # the normalization declared everything
    plan = plan_regions(parse(src), opts)

    # stmt 0 references several variables for the first time; collapse
    # its expression to a constant
    assert prog.body[0].label is None
    prog.body[0] = dataclasses.replace(prog.body[0], expr=IntLit(value=7))
    plan2 = plan_regions(parse(pretty(prog)), opts)
    assert plan2.spans == plan.spans
    changed = [
        i for i, (a, b) in enumerate(zip(plan.sources, plan2.sources))
        if a != b
    ]
    assert changed == [0]

    # the undeclared rendering of the same program is order-fragile:
    # the same edit reorders headers of untouched regions
    bare = dataclasses.replace(parse(src), scalars=[])
    bplan = plan_regions(parse(pretty(bare)), opts)
    bare.body[0] = dataclasses.replace(bare.body[0], expr=IntLit(value=7))
    bplan2 = plan_regions(parse(pretty(bare)), opts)
    bchanged = [
        i for i, (a, b) in enumerate(zip(bplan.sources, bplan2.sources))
        if a != b
    ]
    assert len(bchanged) > 1


def test_region_entries_shared_across_schemas_only_by_key():
    """Region entries are keyed on the full options fingerprint: a
    different schema shares nothing."""
    cache = GraphCache()
    src = _normalized_giant()
    cache.lookup(src, _opts(schema="schema2_opt"))
    entries = len(cache)
    cp, _ = cache.lookup(src, _opts(schema="schema1"))
    assert cp.pass_log[0].metrics["region_cache_hits"] == 0
    # every region (and the whole program) recompiled under its own key
    assert len(cache) > entries


def test_pooled_fanout_matches_serial(monkeypatch):
    # force the fan-out even on single-core hosts (where the cost gate
    # would otherwise keep region compiles serial)
    from repro.translate import regions

    monkeypatch.setattr(regions, "POOL_MIN_CORES", 1)
    cache_pooled = GraphCache()
    pool = make_pool(2)
    try:
        cache_pooled.region_pool = pool
        src = _normalized_giant(seed=1, n_stmts=40)
        cp_pooled, _ = cache_pooled.lookup(src, _opts())
        cp_serial, _ = GraphCache().lookup(src, _opts())
        assert cp_pooled.pass_log[0].metrics["regions"] >= 2
        assert graph_stats(cp_pooled.graph) == graph_stats(cp_serial.graph)
    finally:
        pool.terminate()
        pool.join()


def test_disk_tier_warms_a_fresh_cache(tmp_path):
    """A second cache over the same directory — a respawned worker —
    resolves both the whole program and every region from disk."""
    src = _normalized_giant()
    opts = _opts()
    c1 = GraphCache(cache_dir=tmp_path)
    cp1, _ = c1.lookup(src, opts)

    c2 = GraphCache(cache_dir=tmp_path)
    cp2, hit = c2.lookup(src, opts)
    assert hit
    assert c2.stats.disk_hits == 1 and c2.stats.misses == 0
    assert graph_stats(cp2.graph) == graph_stats(cp1.graph)

    # region entries are individually warm too
    ropts = _region_options(opts)
    plan = plan_regions(parse(src), opts)
    c3 = GraphCache(cache_dir=tmp_path)
    for rsrc in plan.sources:
        assert c3.peek(rsrc, ropts) is not None
    assert c3.stats.disk_hits == len(plan.sources)


# --------------------------------------------------------------------------
# peek / insert


def test_peek_never_compiles():
    cache = GraphCache()
    opts = CompileOptions(schema="schema1")
    assert cache.peek(SRC, opts) is None
    assert cache.stats.misses == 0 and cache.stats.hits == 0
    cp, _ = cache.lookup(SRC, opts)
    assert cache.peek(SRC, opts) is cp
    assert cache.stats.hits == 1


def test_insert_round_trip(tmp_path):
    cache = GraphCache(cache_dir=tmp_path)
    opts = CompileOptions(schema="schema1")
    cp = compile_program(SRC, options=opts)
    cache.insert(SRC, opts, cp)
    assert cache.peek(SRC, opts) is cp
    # and the disk tier got it: a cold cache reads it back
    other = GraphCache(cache_dir=tmp_path)
    assert other.peek(SRC, opts) is not None
    assert other.stats.disk_hits == 1


# --------------------------------------------------------------------------
# byte-accounted LRU


def _fake_entry(nbytes: int):
    class FakeCP:
        def __init__(self, n):
            self._blob = b"x" * n

        def packed_blob(self):
            return self._blob

        def ensure_packed(self):
            return None

    return FakeCP(nbytes)


def _fill(cache, name, nbytes):
    cache.insert(name, CompileOptions(schema="schema1"), _fake_entry(nbytes))


def test_capacity_bytes_validation():
    with pytest.raises(ValueError):
        GraphCache(capacity_bytes=0)
    assert GraphCache(capacity_bytes=1).total_bytes == 0


def test_byte_lru_evicts_oldest_first():
    cache = GraphCache(capacity_bytes=250)
    _fill(cache, "a", 100)
    _fill(cache, "b", 100)
    assert cache.total_bytes == 200 and len(cache) == 2
    # touch "a" so "b" sits at the LRU end
    opts = CompileOptions(schema="schema1")
    assert cache.peek("a", opts) is not None
    _fill(cache, "c", 100)  # 300 bytes > 250: evict "b", not "a"
    assert len(cache) == 2 and cache.total_bytes == 200
    assert cache.peek("a", opts) is not None
    assert cache.peek("c", opts) is not None
    assert cache.peek("b", opts) is None
    assert cache.stats.evictions == 1


def test_byte_lru_keeps_at_least_one_entry():
    """An entry bigger than the whole budget still caches (evicting
    everything else): the cache never thrashes itself empty."""
    cache = GraphCache(capacity_bytes=100)
    _fill(cache, "small", 10)
    _fill(cache, "giant", 10_000)
    assert len(cache) == 1
    assert cache.peek("giant", CompileOptions(schema="schema1")) is not None
    assert cache.total_bytes == 10_000


def test_byte_lru_many_small_after_giant():
    """A stream of small region entries gradually evicts the giant one
    once it ages to the LRU end."""
    cache = GraphCache(capacity_bytes=500)
    _fill(cache, "giant", 450)
    for i in range(8):
        _fill(cache, f"r{i}", 50)
    opts = CompileOptions(schema="schema1")
    assert cache.peek("giant", opts) is None  # evicted by the small wave
    assert cache.total_bytes <= 500
    assert len(cache) >= 2


def test_byte_accounting_on_reinsert_and_clear():
    cache = GraphCache(capacity_bytes=1000)
    _fill(cache, "a", 100)
    _fill(cache, "a", 300)  # re-insert under the same key: no double count
    assert cache.total_bytes == 300 and len(cache) == 1
    cache.clear()
    assert cache.total_bytes == 0 and len(cache) == 0


def test_count_capacity_still_applies():
    cache = GraphCache(capacity=2, capacity_bytes=10_000)
    for name in ("a", "b", "c"):
        _fill(cache, name, 10)
    assert len(cache) == 2
    assert cache.peek("a", CompileOptions(schema="schema1")) is None
