"""Unit and property tests for the adaptive tiering controller.

The controller is a tiny JIT policy state machine; these tests pin its
contract: one rung per promotion (never skips a tier), promotion only on
hits at or above the rung's threshold, demotion only on decay below the
hysteresis band, pre-warm scheduled exactly once per key no matter how
many threads hammer it, and snapshot/restore round-tripping tier state.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import BatchJob, GraphCache, TierController, TieringConfig
from repro.engine.cache import graph_key
from repro.engine.tiering import TIERS
from repro.machine import MachineConfig
from repro.translate import CompileOptions

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""

KEY = "k" * 64


def _ctl(**kw):
    kw.setdefault("entry_tier", "fast")
    kw.setdefault("thresholds", (2, 4))
    kw.setdefault("prewarm", False)
    return TierController(TieringConfig(**kw))


# -- config validation -----------------------------------------------------


def test_config_rejects_bad_tiers():
    with pytest.raises(ValueError):
        TieringConfig(entry_tier="warp")
    with pytest.raises(ValueError):
        TieringConfig(max_tier="warp")
    with pytest.raises(ValueError):
        TieringConfig(entry_tier="vectorized", max_tier="fast")


def test_config_rejects_bad_thresholds():
    with pytest.raises(ValueError):
        TieringConfig(thresholds=())  # fewer than rungs - 1
    with pytest.raises(ValueError):
        TieringConfig(thresholds=(8, 8))  # not strictly increasing
    with pytest.raises(ValueError):
        TieringConfig(thresholds=(0, 4))  # not positive


def test_ladder_is_contiguous_segment():
    assert TieringConfig().ladder == ("fast", "packed", "vectorized")
    assert TieringConfig(
        entry_tier="step", thresholds=(1, 2, 3)
    ).ladder == TIERS
    pinned = TieringConfig(
        entry_tier="step", max_tier="step", thresholds=()
    )
    assert pinned.ladder == ("step",)


# -- promotion / demotion --------------------------------------------------


def test_climbs_one_rung_per_threshold():
    ctl = _ctl()
    seen = [ctl.record(KEY) for _ in range(6)]
    # hotness 1 < 2 -> fast; 2 >= 2 -> packed (the promoting hit itself
    # runs promoted); 3 < 4 -> packed; 4 >= 4 -> vectorized; then stays
    assert seen == [
        "fast", "packed", "packed", "vectorized", "vectorized", "vectorized"
    ]
    snap = ctl.snapshot()
    assert snap["promotions"] == 2
    assert snap["by_tier"]["vectorized"] == 1
    assert snap["top"][0]["hits"] == 6


def test_never_skips_a_tier():
    """A key restored far below its hotness still climbs rung by rung:
    every transition observed through record() is a single step."""
    ctl = _ctl()
    ctl.restore_state(
        {"v": 1, "graphs": {KEY: {"tier": "fast", "hits": 0,
                                  "hotness": 1000.0}}}
    )
    prev = ctl.tier_for(KEY)
    for _ in range(4):
        cur = ctl.record(KEY)
        assert ctl.config.ladder.index(cur) - \
            ctl.config.ladder.index(prev) <= 1
        prev = cur
    assert prev == "vectorized"


def test_decay_demotes_below_hysteresis_band_only():
    ctl = _ctl()
    for _ in range(4):
        ctl.record(KEY)
    assert ctl.tier_for(KEY) == "vectorized"
    # hotness 4 -> 2: still >= thresholds[1] * 0.25 = 1.0 -> no demotion
    ctl.decay()
    assert ctl.tier_for(KEY) == "vectorized"
    # 2 -> 1: 1.0 is not < 1.0 -> still vectorized (strict bound)
    ctl.decay()
    assert ctl.tier_for(KEY) == "vectorized"
    # 1 -> 0.5 < 1.0 -> one rung down; 0.5 >= thresholds[0]*0.25 keeps
    # it on packed this tick (one rung per decay, like promotion)
    ctl.decay()
    assert ctl.tier_for(KEY) == "packed"
    ctl.decay()
    assert ctl.tier_for(KEY) == "fast"
    snap = ctl.snapshot()
    assert snap["demotions"] == 2


def test_decay_prunes_cold_entry_keys():
    ctl = _ctl()
    ctl.record(KEY)
    for _ in range(4):
        ctl.decay()
    assert ctl.snapshot()["graphs"] == 0
    # unseen keys report the entry tier
    assert ctl.tier_for(KEY) == "fast"


def test_pinned_ladder_is_a_no_op_controller():
    ctl = TierController(
        TieringConfig(entry_tier="step", max_tier="step", thresholds=())
    )
    assert [ctl.record(KEY) for _ in range(10)] == ["step"] * 10
    assert ctl.snapshot()["promotions"] == 0


# -- job assignment --------------------------------------------------------


def test_assign_rewrites_only_eligible_jobs():
    ctl = _ctl(thresholds=(2, 3))
    auto = BatchJob(SRC, name="auto")
    pinned = BatchJob(SRC, config=MachineConfig(sim_mode="step"), name="pin")
    finite = BatchJob(SRC, config=MachineConfig(num_pes=2), name="finite")
    bounded = BatchJob(SRC, config=MachineConfig(loop_bound=3), name="bound")

    out = ctl.assign(auto)
    assert out.config.sim_mode == "fast"  # first hit: entry tier
    assert auto.config is None  # original untouched
    assert ctl.assign(auto).config.sim_mode == "packed"
    assert ctl.assign(auto).config.sim_mode == "vectorized"

    for job in (pinned, finite, bounded):
        assert ctl.assign(job) is job  # passed through untouched


def test_assign_key_is_per_source_and_options():
    ctl = _ctl(thresholds=(2, 3))
    a = BatchJob(SRC, name="a")
    b = BatchJob(SRC, options=CompileOptions(schema="schema1"), name="b")
    ctl.assign(a)
    ctl.assign(a)
    # b shares the source but not the compile options: separate key,
    # still cold, still on the entry tier
    assert ctl.assign(b).config.sim_mode == "fast"
    assert ctl.snapshot()["graphs"] == 2


# -- state blob round trip -------------------------------------------------


def test_state_blob_round_trips():
    ctl = _ctl()
    for _ in range(4):
        ctl.record(KEY)
    blob = ctl.state_blob()
    fresh = _ctl()
    assert fresh.restore_state(blob) == 1
    assert fresh.tier_for(KEY) == "vectorized"
    assert fresh.snapshot()["top"][0]["hits"] == 4


def test_restore_state_clamps_out_of_ladder_tiers():
    ctl = _ctl()  # ladder fast..vectorized
    assert ctl.restore_state(
        {"v": 1, "graphs": {KEY: {"tier": "step", "hits": 3,
                                  "hotness": 1.0}}}
    ) == 1
    assert ctl.tier_for(KEY) == "fast"  # clamped up into the ladder


def test_restore_state_skips_malformed_entries():
    ctl = _ctl()
    blob = {
        "v": 1,
        "graphs": {
            KEY: {"tier": "packed", "hits": 2, "hotness": 2.0},
            "bad-tier": {"tier": "warp", "hits": 1, "hotness": 1.0},
            "bad-hits": {"tier": "fast", "hits": "many", "hotness": 1.0},
            12345: {"tier": "fast", "hits": 1, "hotness": 1.0},
        },
    }
    assert ctl.restore_state(blob) == 1
    assert ctl.restore_state(None) == 0
    assert ctl.restore_state({"v": 1}) == 0
    assert ctl.restore_state({"v": 1, "graphs": "nope"}) == 0


# -- pre-warm --------------------------------------------------------------


def test_prewarm_scheduled_once_under_concurrent_hits():
    """8 threads hammering one key past the promotion threshold must
    schedule exactly one pre-warm, and the key must end up promoted
    (never wedged behind the gate) once the pre-warm lands."""
    cache = GraphCache()
    options = CompileOptions()
    cp, _ = cache.lookup(SRC, options)
    ctl = TierController(
        TieringConfig(entry_tier="fast", thresholds=(4, 8)),
        cache=cache,
    )
    job = BatchJob(SRC, options=options)
    key = graph_key(SRC, options)
    barrier = threading.Barrier(8)
    errors = []

    def work():
        try:
            barrier.wait()
            for _ in range(10):
                ctl.record(key, job=job)
        except BaseException as exc:  # pragma: no cover - debug aid
            errors.append(exc)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    ctl.join_prewarms(timeout=30)
    snap = ctl.snapshot()
    assert snap["prewarms"] == 1  # idempotent under the race
    assert snap["top"][0]["prewarmed"]
    # 80 hits dwarf both thresholds, but promotion is one rung per hit:
    # at most two more hits land the key on the top tier
    ctl.record(key, job=job)
    assert ctl.record(key, job=job) == "vectorized"
    assert cp.ensure_packed() is not None
    ctl.close()


def test_promotion_not_gated_without_cache():
    """With no cache attached there is nothing to pre-warm: promotion
    into the blob tiers is immediate at the threshold."""
    ctl = TierController(
        TieringConfig(entry_tier="fast", thresholds=(2, 4))
    )  # prewarm=True but cache=None
    seen = [ctl.record(KEY) for _ in range(4)]
    assert seen == ["fast", "packed", "packed", "vectorized"]


def test_prewarm_failure_allows_retry_then_promotion():
    """A crashing pre-warm must not wedge the key: the schedule flag
    resets, errors are counted, and promotion still lands in-request."""
    cache = GraphCache()
    options = CompileOptions()
    cache.lookup(SRC, options)
    ctl = TierController(
        TieringConfig(entry_tier="fast", thresholds=(2, 4),
                      prewarm_fraction=1.0),
        cache=cache,
    )
    key = graph_key(SRC, options)
    # a job whose source is not in the cache and does not compile:
    # the worker's lookup raises and the error path runs
    bad = BatchJob("this is not a program", options=options)
    ctl.record(key, job=bad)
    tier = ctl.record(key, job=bad)  # schedules the doomed pre-warm
    assert tier == "fast"
    ctl.join_prewarms(timeout=30)  # worker swallows the error...
    assert int(ctl._c_prewarm_errors.value) == 1  # ...and counts it
    good = BatchJob(SRC, options=options)
    ctl.record(key, job=good)  # reschedules with a warmable job
    ctl.join_prewarms(timeout=30)
    assert ctl.record(key, job=good) == "packed"
    ctl.close()


# -- hypothesis properties -------------------------------------------------

events = st.lists(
    st.sampled_from(["hit", "decay"]), min_size=1, max_size=200
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=events)
def test_transitions_are_single_step_and_direction_locked(events):
    """Against any hit/decay interleaving: the tier moves at most one
    rung per event, only up on hits, only down on decays, and promotion
    fires only when hotness had reached the rung's threshold."""
    ctl = _ctl(thresholds=(3, 7))
    ladder = ctl.config.ladder
    prev_idx = 0
    hotness = 0.0
    for ev in events:
        if ev == "hit":
            hotness += 1.0
            idx = ladder.index(ctl.record(KEY))
            assert idx - prev_idx in (0, 1)
            if idx > prev_idx:
                # the hit that promotes had hotness >= the threshold
                assert hotness >= ctl.config.thresholds[prev_idx]
        else:
            ctl.decay()
            hotness *= ctl.config.decay_factor
            if ctl.snapshot()["graphs"] == 0:
                hotness = 0.0  # pruned: model resets with the state
            idx = ladder.index(ctl.tier_for(KEY))
            assert prev_idx - idx in (0, 1)
            if idx < prev_idx:
                band = (
                    ctl.config.thresholds[prev_idx - 1]
                    * ctl.config.demote_ratio
                )
                assert hotness < band
        prev_idx = idx


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=events)
def test_hysteresis_no_flapping_within_one_tick(events):
    """A promotion and a demotion of the same key can never be caused
    by adjacent events at the same hotness: the promote bound and the
    demote bound are separated by the hysteresis gap, so alternating
    hit/decay at the boundary holds the tier steady rather than
    oscillating every event."""
    ctl = _ctl(thresholds=(4, 12))
    ladder = ctl.config.ladder
    prev_idx = 0
    flips = 0
    last_move = 0  # -1 demote, +1 promote
    for ev in events:
        if ev == "hit":
            idx = ladder.index(ctl.record(KEY))
        else:
            ctl.decay()
            idx = ladder.index(ctl.tier_for(KEY))
        move = idx - prev_idx
        if move:
            if last_move and move == -last_move:
                flips += 1
            last_move = move
        prev_idx = idx
    # a reversal requires hotness to cross the full gap between the
    # demote band (threshold * 0.25) and the promote threshold — at
    # +1 hotness per hit and *0.5 per decay that takes multiple events,
    # so direction reversals are rare even over 200 adversarial events
    assert flips <= len(events) // 6 + 1
