"""Tier-transition differential suite.

The adaptive tiering controller swaps a cached graph's execution tier
*mid-stream* — the same job resubmitted enough times crosses the
fast → packed and packed → vectorized promotion boundaries.  This suite
replays identical job streams with tiering on and pinned to every
static tier over a generated program corpus, and holds the promoted
stream to bit-identical final memory, ``end_values``, and deterministic
:class:`~repro.machine.metrics.Metrics` fields across every boundary.
"""

import pytest

from repro.engine import GraphCache, TierController, TieringConfig
from repro.engine.cache import graph_key
from repro.machine import MachineConfig
from repro.translate import CompileOptions, simulate
from repro.validate.oracle import DETERMINISTIC_METRIC_FIELDS, legal_schemas
from repro.validate.progen import generate

SEEDS = range(6)


def _assert_same(a, b, tag):
    assert a.memory == b.memory, tag
    assert a.end_values == b.end_values, tag
    for f in DETERMINISTIC_METRIC_FIELDS:
        assert getattr(a.metrics, f) == getattr(b.metrics, f), (tag, f)


@pytest.mark.parametrize("seed", SEEDS)
def test_promoted_stream_matches_every_pinned_tier(seed):
    gp = generate(seed=seed)
    schema = legal_schemas(gp.source)[0]
    options = CompileOptions(schema=schema)
    cache = GraphCache()
    cp, _ = cache.lookup(gp.source, options)
    key = graph_key(gp.source, options)

    for ins in gp.inputs:
        # pinned baselines: the whole stream at one static tier
        pinned = {
            tier: simulate(cp, ins, MachineConfig(sim_mode=tier))
            for tier in ("step", "fast", "packed", "vectorized")
        }
        for tier, res in pinned.items():
            if tier == "step":
                continue
            _assert_same(res, pinned["step"], (seed, tier, "pinned"))

        # tiered stream: 6 hits walk fast -> packed -> vectorized
        ctl = TierController(TieringConfig(
            entry_tier="fast", thresholds=(2, 4), prewarm=False,
        ))
        tiers_seen = []
        for hit in range(6):
            tier = ctl.record(key)
            tiers_seen.append(tier)
            res = simulate(cp, ins, MachineConfig(sim_mode=tier))
            assert res.backend == tier, (seed, hit)
            _assert_same(res, pinned[tier], (seed, hit, tier))
            # the promotion boundary itself changes nothing observable
            _assert_same(res, pinned["step"], (seed, hit, tier))

        assert tiers_seen == [
            "fast", "packed", "packed",
            "vectorized", "vectorized", "vectorized",
        ], seed


@pytest.mark.parametrize("seed", SEEDS)
def test_full_ladder_from_step_entry(seed):
    """Entry at the reference tier: the stream crosses *every* boundary
    (step -> fast is the interpreter-family switch; fast -> packed and
    packed -> vectorized are the blob switches)."""
    gp = generate(seed=seed)
    schema = legal_schemas(gp.source)[0]
    options = CompileOptions(schema=schema)
    cache = GraphCache()
    cp, _ = cache.lookup(gp.source, options)
    key = graph_key(gp.source, options)
    ins = gp.inputs[0]

    ctl = TierController(TieringConfig(
        entry_tier="step", thresholds=(2, 3, 4), prewarm=False,
    ))
    baseline = None
    seen = set()
    for _ in range(6):
        tier = ctl.record(key)
        seen.add(tier)
        res = simulate(cp, ins, MachineConfig(sim_mode=tier))
        if baseline is None:
            baseline = res
        else:
            _assert_same(res, baseline, (seed, tier))
    assert seen == {"step", "fast", "packed", "vectorized"}, seed
