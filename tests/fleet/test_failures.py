"""Fleet failure paths: kill -9 of a shard mid-batch, router drain with
zero lost results, deadline expiry while queued at the router, and a
shard crash in the middle of an open-loop campaign."""

import threading
import time

import pytest

from repro.bench.loadgen import _default_jobs, run_open_loop
from repro.engine import BatchJob
from repro.engine.cache import graph_key
from repro.fleet import running_fleet
from repro.service import JobRejected, ServiceClient


def _slow_src(n: int = 60000) -> str:
    return f"i := 0;\nl: i := i + 1;\n   if i < {n} then goto l;\n"


def _wait(cond, timeout=30.0, interval=0.01):
    t0 = time.monotonic()
    while not cond():
        if time.monotonic() - t0 > timeout:
            raise TimeoutError("condition not reached")
        time.sleep(interval)


def test_kill_nine_fails_inflight_then_respawns():
    """kill -9 mid-run: the in-flight job fails with shard_failed (a
    per-job error, not a torn client connection), the supervisor
    respawns the shard on the same ring slot, and the same graph then
    completes there."""
    with running_fleet(
        shards=2, max_batch=1, max_wait_ms=0.0
    ) as (ep, router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            job = BatchJob(_slow_src(), name="victim")  # ~1.2s
            key = graph_key(job.source, job.options)
            victim = router.ring.lookup(key, 1)[0]
            link = router.links[victim]

            rid = client.start(job)
            _wait(lambda: len(link.inflight) == 1)  # it reached the shard
            router.shards[victim].kill()

            with pytest.raises(JobRejected) as exc:
                client.result(rid)
            assert exc.value.code == "shard_failed"

            # subsequent jobs with the same key reroute to the respawn
            br = client.submit(BatchJob(job.source, name="retry"))
            assert br.ok, br.error
            assert router.shards[victim].spawns == 2
            st = client.stats()
            assert st["fleet"]["respawns"] == 1
            assert st["fleet"]["shard_failed"] == 1


def test_drain_delivers_every_accepted_result():
    """shutdown mid-burst: every accepted job's result reaches the
    client before the fleet exits — zero lost results."""
    with running_fleet(shards=2, max_wait_ms=1.0) as (ep, router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            src = _slow_src(2000)
            reqs = [client.start(BatchJob(src, name=f"d{i}"))
                    for i in range(8)]
            draining = client.shutdown()
            assert draining >= 0
            # intake is closed the moment the drain starts...
            with pytest.raises(JobRejected) as exc:
                client.submit(BatchJob(src, name="late"))
            assert exc.value.code == "shutting_down"
            # ...but every already-accepted job still delivers
            for r in reqs:
                assert client.result(r).ok  # all 8 delivered


def test_deadline_expiry_while_queued_at_router():
    """A job bound for a dead shard (respawn disabled) waits in the
    router's outbox; its deadline fires there and the client gets
    deadline_expired on time — not a hang, not a torn connection."""
    with running_fleet(
        shards=1, respawn=False, max_wait_ms=0.0
    ) as (ep, router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            assert client.submit(BatchJob("x := 1;", name="up")).ok
            router.shards[0].kill()
            _wait(lambda: router.links[0].down)
            t0 = time.monotonic()
            with pytest.raises(JobRejected) as exc:
                client.submit(BatchJob("y := 2;", name="stuck"),
                              deadline_ms=300.0)
            assert exc.value.code == "deadline_expired"
            assert 0.2 < time.monotonic() - t0 < 10.0
            st = client.stats()
            assert st["expired"] == 1
            assert st["fleet"]["live"] == 0


def test_kill_nine_during_open_loop_campaign():
    """The acceptance scenario: kill -9 one shard during a seeded
    open-loop campaign.  Only that shard's in-flight jobs are lost (as
    per-job errors), the campaign runs to completion, and the shard is
    back by the end."""
    jobs = _default_jobs(6, 800)
    with running_fleet(
        shards=2, max_batch=4, max_wait_ms=1.0
    ) as (ep, router):
        report_box = {}

        def campaign():
            report_box["report"] = run_open_loop(
                ep, jobs, rate=60.0, duration_s=3.0,
                connections=2, seed=11,
            )

        t = threading.Thread(target=campaign)
        t.start()
        _wait(lambda: sum(lk.outstanding for lk in router.links) > 0
              or not t.is_alive())
        time.sleep(0.5)  # let load build on both shards
        router.shards[0].kill()
        t.join(120.0)
        assert not t.is_alive()
        report = report_box["report"]

        # every offered job got an answer: completed, a per-job
        # rejection (shard_failed / queue_full), or a captured error
        assert report.offered > 0
        assert (report.completed + report.rejected + report.job_errors
                == report.offered)
        # the fleet kept serving: most of the campaign completed
        assert report.completed > report.offered * 0.5
        # and the crash was contained: every client-side rejection is a
        # per-job wire error the router accounted for (shard_failed for
        # the in-flight casualties, queue_full for backpressure during
        # the outage), never a torn client connection
        assert router.shards[0].spawns == 2  # respawned
        accounted = sum(
            router.registry.counter(f"fleet.jobs.{name}").value
            for name in ("shard_failed", "rejected", "expired",
                         "forwarded_rejects")
        )
        assert report.rejected <= accounted
