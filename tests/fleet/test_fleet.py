"""Fleet router suite: round trips and cache affinity, the differential
bit-identity guarantee through the router, backpressure and deadline
propagation, hot-graph replication, and cross-shard stats/metrics
aggregation."""

import time

import pytest

from repro.bench.harness import corpus_jobs
from repro.engine import BatchJob, GraphCache, run_batch
from repro.engine.cache import graph_key
from repro.fleet import running_fleet
from repro.service import JobRejected, ServiceClient

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _slow_src(n: int = 20000) -> str:
    """~18us per iteration on the packed backend: n=20000 is ~0.4s."""
    return f"i := 0;\nl: i := i + 1;\n   if i < {n} then goto l;\n"


def _wait(cond, timeout=20.0, interval=0.01):
    t0 = time.monotonic()
    while not cond():
        if time.monotonic() - t0 > timeout:
            raise TimeoutError("condition not reached")
        time.sleep(interval)


def test_round_trip_affinity_and_aggregation():
    """One fleet exercise end to end: submits route by graph key onto a
    warm shard (second submit is a cache hit), ping reports the fleet,
    and stats/metrics aggregate across shards with per-shard breakdowns.
    """
    with running_fleet(shards=2, max_wait_ms=1.0) as (ep, router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            ping = client.ping()
            assert ping["ok"] and ping["fleet"]["shards"] == 2

            first = client.submit(BatchJob(SRC, name="a"))
            assert first.ok, first.error
            again = client.submit(BatchJob(SRC, name="b"))
            assert again.ok and again.cache_hit  # same shard, warm cache
            assert again.result.memory == first.result.memory

            # a different graph may land on the other shard; either way
            # the fleet serves it
            other = client.submit(BatchJob(_slow_src(50), name="c"))
            assert other.ok

            st = client.stats()
            assert st["submitted"] == 3 and st["completed"] == 3
            assert st["fleet"]["shards"] == 2 and st["fleet"]["live"] == 2
            assert set(st["shards"]) == {"0", "1"}
            assert all(sh["up"] for sh in st["shards"].values())
            # per-shard submitted sums to the fleet total
            assert sum(
                sh["submitted"] for sh in st["shards"].values()
            ) == 3
            # the single-server stats surface is preserved (CLI contract)
            for key in ("uptime_s", "queue_depth", "in_flight", "cache",
                        "latency_ms", "jobs_per_s", "batches"):
                assert key in st
            assert st["cache"]["jobs_hit"] == 1

            m = client.metrics()
            assert set(m["shards"]) == {"0", "1"}
            # shard counters aggregate bucket-wise into the fleet view
            assert m["counters"]["service.jobs.completed"] == 3
            assert m["counters"]["fleet.jobs.completed"] == 3
            agg = m["histograms"]["service.latency_ms.total"]
            assert agg["count"] == 3
            assert sum(b[1] for b in agg["buckets"]) == 3


@pytest.mark.parametrize(
    "shards,max_batch,max_wait_ms",
    [(1, 4, 5.0), (2, 1, 0.0), (3, 8, 25.0)],
)
def test_differential_bit_identical_through_fleet(
    shards, max_batch, max_wait_ms
):
    """For any shard count and batcher setting, fleet results equal a
    direct run_batch() of the same jobs — the PR-2 differential
    guarantee extended through consistent-hash routing."""
    jobs = corpus_jobs(programs=["gcd", "fib"])
    direct = run_batch(jobs, cache=GraphCache())
    with running_fleet(
        shards=shards, max_batch=max_batch, max_wait_ms=max_wait_ms
    ) as (ep, _router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            via_fleet = client.submit_many(jobs)
    assert len(via_fleet) == len(direct)
    for d, s in zip(direct, via_fleet):
        assert s.ok, s.error
        assert s.name == d.name
        assert s.result.memory == d.result.memory
        assert s.result.end_values == d.result.end_values
        assert s.result.metrics == d.result.metrics  # ops/cycles/profile
        assert s.result.fast_path == d.result.fast_path
        assert s.stats == d.stats


def test_router_max_pending_queue_full():
    """The router's own backpressure: once a shard has max_pending jobs
    outstanding, further submits bound for it are rejected immediately
    with queue_full — the shard never sees them."""
    with running_fleet(
        shards=1, max_pending=1, max_batch=1, max_wait_ms=0.0
    ) as (ep, router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            slow = client.start(BatchJob(_slow_src(), name="slow"))
            _wait(lambda: router.links[0].outstanding >= 1)
            with pytest.raises(JobRejected) as exc:
                client.submit(BatchJob(SRC, name="bounced"))
            assert exc.value.code == "queue_full"
            assert client.result(slow).ok  # the slow job is unharmed
        st = router.registry.counter("fleet.jobs.rejected")
        assert st.value == 1


def test_shard_queue_full_passes_through():
    """A shard's queue_full travels back verbatim: tiny shard queue,
    generous router bound, pipelined same-graph burst."""
    with running_fleet(
        shards=1, max_pending=64, max_queue=1, max_batch=1, max_wait_ms=0.0
    ) as (ep, _router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            src = _slow_src()
            reqs = [
                client.start(BatchJob(src, name=f"s{i}")) for i in range(6)
            ]
            outcomes = []
            for r in reqs:
                try:
                    outcomes.append(client.result(r).ok)
                except JobRejected as exc:
                    outcomes.append(exc.code)
            assert "queue_full" in outcomes  # shard-origin backpressure
            assert True in outcomes  # and accepted work still completes


def test_deadline_propagates_to_shard():
    """A deadline on a forwarded job expires at the shard on time."""
    with running_fleet(shards=1, max_wait_ms=0.0) as (ep, _router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            t0 = time.monotonic()
            with pytest.raises(JobRejected) as exc:
                client.submit(BatchJob(_slow_src(200000), name="dl"),
                              deadline_ms=150.0)
            assert exc.value.code == "deadline_expired"
            assert time.monotonic() - t0 < 10.0


def test_hot_graph_replication_load_aware():
    """Past hot_threshold routings, a key may be served by any of its
    replication ring successors, chosen by least outstanding load — a
    pipelined burst of one hot graph spills onto the replica."""
    with running_fleet(
        shards=2, replication=2, hot_threshold=2,
        max_batch=1, max_wait_ms=0.0,
    ) as (ep, router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            src = _slow_src(2000)  # ~40ms: keeps outstanding > 0
            job = BatchJob(src, name="hot")
            key = graph_key(job.source, job.options)
            reps = router.ring.lookup(key, 2)
            assert len(reps) == 2
            reqs = [client.start(BatchJob(src, name=f"h{i}"))
                    for i in range(10)]
            for r in reqs:
                assert client.result(r).ok
            # both shards executed the hot graph...
            st = client.stats()
            per_shard = [st["shards"][str(i)]["submitted"] for i in reps]
            assert all(n > 0 for n in per_shard), per_shard
            # ...and the router recorded load-aware replica choices
            assert st["fleet"]["replicated_routes"] > 0
            assert st["fleet"]["hot_graphs"] >= 1


def test_duplicate_and_malformed_requests():
    with running_fleet(shards=1) as (ep, _router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            # malformed job: bad_request, connection stays usable
            client._send({"op": "submit", "id": "bad", "job": {"nope": 1}})
            with pytest.raises(JobRejected) as exc:
                client.result("bad")
            assert exc.value.code == "bad_request"
            assert client.submit(BatchJob(SRC, name="after")).ok


def test_merge_latency_pools_shard_samples():
    """Regression: the fleet stats merge used a count-weighted average
    of per-shard p50/p95/p99, which under-reports tail latency whenever
    one shard is slower than the rest — the slow shard's p99 gets
    diluted by the fast shards' counts.  The merge must compute
    percentiles over the pooled sample rings instead."""
    from repro.engine.latency import LatencySummary, percentile
    from repro.fleet.router import _merge_latency

    def summary(samples, ship_samples=True):
        d = LatencySummary.from_samples(samples).to_json()
        if ship_samples:
            d["samples"] = list(samples)
        return d

    fast = [1.0] * 900    # healthy shard
    slow = [100.0] * 100  # shard stuck behind a slow disk

    merged = _merge_latency([summary(fast), summary(slow)])
    pooled = sorted(fast + slow)
    assert merged["count"] == 1000
    assert merged["p99"] == percentile(pooled, 99) == 100.0
    assert merged["p95"] == percentile(pooled, 95) == 100.0
    assert merged["p50"] == percentile(pooled, 50) == 1.0
    assert merged["max"] == 100.0
    assert merged["mean"] == pytest.approx(10.9)

    # the old weighted average (kept only as the fallback for shards
    # that predate the `samples` stats flag) visibly under-reports:
    # (900 * 1.0 + 100 * 100.0) / 1000 = 10.9ms claimed p99 vs 100ms real
    legacy = _merge_latency([summary(fast, ship_samples=False),
                             summary(slow)])
    assert legacy["p99"] == pytest.approx(10.9)
    assert legacy["p99"] < merged["p99"] / 5
    # count/mean/max compose exactly under either merge
    assert legacy["count"] == merged["count"]
    assert legacy["mean"] == merged["mean"]
    assert legacy["max"] == merged["max"]


def test_fleet_stats_latency_merge_is_sample_based():
    """The router asks shards for raw rings (stats op, samples=True),
    merges percentiles over the pooled samples, and strips the rings
    from the client-facing reply."""
    with running_fleet(shards=2, max_wait_ms=1.0) as (ep, _router):
        with ServiceClient(**ep, timeout=60.0, retries=20) as client:
            for i in range(4):
                assert client.submit(BatchJob(SRC, name=f"j{i}")).ok
            st = client.stats()
            for stage in ("compile", "sim"):
                merged = st["latency_ms"][stage]
                assert merged["count"] >= 1
                assert merged["p99"] <= merged["max"]
                assert "samples" not in merged
            # rings never leak into the per-shard breakdown
            for sh in st["shards"].values():
                for stage_summary in sh["latency_ms"].values():
                    assert "samples" not in stage_summary
