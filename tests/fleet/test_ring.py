"""Consistent-hash ring properties: determinism, balance, minimal
disruption on membership change, distinct replica sets."""

import pytest

from repro.fleet import HashRing, hash_point

KEYS = [f"graph-{i:04d}" for i in range(2000)]


def test_hash_point_stable():
    # pinned value: placement must survive process restarts and
    # interpreter versions (blake2b, not the salted builtin hash)
    assert hash_point("graph-0000") == hash_point("graph-0000")
    a, b = hash_point("a"), hash_point("b")
    assert a != b
    assert 0 <= a < 2**64 and 0 <= b < 2**64


def test_lookup_deterministic_across_instances():
    r1 = HashRing(range(4))
    r2 = HashRing(range(4))
    for k in KEYS[:200]:
        assert r1.lookup(k, 2) == r2.lookup(k, 2)


def test_distribution_roughly_balanced():
    ring = HashRing(range(4))
    dist = ring.distribution(KEYS)
    assert set(dist) == set(range(4))
    for node, count in dist.items():
        # vnodes keep every shard within a loose band of fair share
        assert count > 0.05 * len(KEYS), (node, dist)


def test_minimal_disruption_on_add():
    before = HashRing(range(4))
    after = HashRing(range(4))
    after.add(4)
    moved = 0
    for k in KEYS:
        old, new = before.lookup(k)[0], after.lookup(k)[0]
        if old != new:
            moved += 1
            assert new == 4  # keys only ever move TO the new node
    # and the new node takes roughly (not wildly more than) its share
    assert 0 < moved < 2 * len(KEYS) / 5


def test_minimal_disruption_on_remove():
    before = HashRing(range(4))
    after = HashRing(range(4))
    after.remove(2)
    for k in KEYS[:500]:
        old = before.lookup(k)[0]
        if old != 2:
            assert after.lookup(k)[0] == old  # survivors keep their keys


def test_replica_sets_distinct_and_prefix_stable():
    ring = HashRing(range(5))
    for k in KEYS[:200]:
        reps = ring.lookup(k, 3)
        assert len(reps) == len(set(reps)) == 3
        # growing n never changes the earlier choices
        assert ring.lookup(k, 1) == reps[:1]
        assert ring.lookup(k, 2) == reps[:2]


def test_lookup_clamps_to_population():
    ring = HashRing(range(2))
    assert len(ring.lookup("k", 10)) == 2


def test_membership_errors():
    ring = HashRing(range(2))
    with pytest.raises(ValueError):
        ring.add(1)  # duplicate
    with pytest.raises(KeyError):
        ring.remove(9)
    empty = HashRing()
    with pytest.raises(LookupError):
        empty.lookup("k")
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
