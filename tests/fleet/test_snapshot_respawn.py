"""Fleet snapshot crash tests: a ``kill -9``'d shard respawns over its
per-shard snapshot directory and comes up warm — compiled graphs and
tier state restored from the last committed manifest — with no shared
disk cache in play."""

import os
import time

from repro.engine import BatchJob
from repro.engine.cache import SNAPSHOT_MANIFEST, graph_key
from repro.fleet import running_fleet
from repro.service import ServiceClient

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _wait(cond, timeout=30.0, interval=0.01):
    t0 = time.monotonic()
    while not cond():
        if time.monotonic() - t0 > timeout:
            raise TimeoutError("condition not reached")
        time.sleep(interval)


def _engine_stats(client, shard: int) -> dict:
    return client.stats()["shards"][str(shard)]["cache"]["engine"]


def test_killed_shard_restores_from_its_snapshot(tmp_path):
    """No shared --cache-dir: the snapshot is the only persistence.
    After the owner shard is kill -9'd mid-life, the respawn restores
    the last periodic snapshot and the first resubmission is a memory
    hit with zero recompiles."""
    snap_root = str(tmp_path / "snap")
    with running_fleet(
        shards=2, max_batch=1, max_wait_ms=0.0,
        snapshot_dir=snap_root, snapshot_interval_s=0.05,
    ) as (ep, router):
        assert all(
            sh.snapshot_dir == os.path.join(snap_root, f"shard-{sh.index}")
            for sh in router.shards
        )
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            job = BatchJob(SRC, name="seed")
            key = graph_key(job.source, job.options)
            owner = router.ring.lookup(key, 1)[0]

            br = client.submit(job)
            assert br.ok, br.error
            assert _engine_stats(client, owner)["compiles"] == 1

            # wait for a periodic snapshot that includes the entry
            manifest = os.path.join(
                snap_root, f"shard-{owner}", SNAPSHOT_MANIFEST
            )
            _wait(lambda: os.path.exists(manifest))

            router.shards[owner].kill()
            _wait(lambda: router.shards[owner].spawns == 2)
            _wait(lambda: not router.links[owner].down)

            br2 = client.submit(BatchJob(SRC, name="after-kill"))
            assert br2.ok, br2.error
            assert br2.cache_hit  # restored entry, not a recompile
            eng = _engine_stats(client, owner)
            assert eng["compiles"] == 0
            assert eng["memory_hits"] >= 1


def test_respawn_with_junk_in_snapshot_dir_is_cold_not_crashed(tmp_path):
    """Torn snapshot artifacts — orphaned ``*.tmp`` files and a corrupt
    manifest — must leave the respawned shard serving (cold), never
    crash-looping."""
    snap_root = tmp_path / "snap"
    shard_dir = snap_root / "shard-0"
    shard_dir.mkdir(parents=True)
    (shard_dir / SNAPSHOT_MANIFEST).write_text("{torn mid-write")
    (shard_dir / (SNAPSHOT_MANIFEST + "abc123.tmp")).write_text("{half")
    with running_fleet(
        shards=1, max_batch=1, max_wait_ms=0.0,
        snapshot_dir=str(snap_root), snapshot_interval_s=0.0,
    ) as (ep, _router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            br = client.submit(BatchJob(SRC, name="cold"))
            assert br.ok, br.error


def test_fleet_tiers_rpc_aggregates_shards(tmp_path):
    with running_fleet(
        shards=2, max_batch=1, max_wait_ms=0.0,
        tiering=True, tier_thresholds=(2, 4), tier_decay_s=0.0,
    ) as (ep, _router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            for i in range(6):
                assert client.submit(BatchJob(SRC, name=f"t{i}")).ok
            tiers = client.tiers()
            assert tiers["enabled"]
            assert tiers["graphs"] >= 1
            assert tiers["promotions"] >= 1
            assert tiers["top"], "hot graphs pooled across shards"
            assert "shard" in tiers["top"][0]
            ups = [s for s in tiers["shards"].values() if s.get("up")]
            assert len(ups) == 2
