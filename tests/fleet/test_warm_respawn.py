"""Warm respawn: every shard shares one content-addressed disk cache,
so a respawned shard resumes from the fleet's accumulated compile work
instead of starting cold."""

import time

from repro.engine import BatchJob
from repro.engine.cache import graph_key
from repro.fleet import running_fleet
from repro.service import ServiceClient

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _wait(cond, timeout=30.0, interval=0.01):
    t0 = time.monotonic()
    while not cond():
        if time.monotonic() - t0 > timeout:
            raise TimeoutError("condition not reached")
        time.sleep(interval)


def _engine_stats(client, shard: int) -> dict:
    return client.stats()["shards"][str(shard)]["cache"]["engine"]


def test_respawned_shard_first_job_is_disk_hit_not_recompile(tmp_path):
    """kill -9 a shard after it compiled a graph; the supervisor
    respawns it over the same shared --cache-dir, and the first
    resubmission of that graph is a *disk hit* — zero recompiles."""
    with running_fleet(
        shards=2, max_batch=1, max_wait_ms=0.0, cache_dir=str(tmp_path)
    ) as (ep, router):
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            job = BatchJob(SRC, name="seed")
            key = graph_key(job.source, job.options)
            owner = router.ring.lookup(key, 1)[0]

            br = client.submit(job)
            assert br.ok, br.error
            eng = _engine_stats(client, owner)
            assert eng["compiles"] == 1 and eng["disk_hits"] == 0

            router.shards[owner].kill()
            _wait(lambda: router.shards[owner].spawns == 2)
            _wait(lambda: not router.links[owner].down)

            br2 = client.submit(BatchJob(SRC, name="after-respawn"))
            assert br2.ok, br2.error
            assert br2.cache_hit  # served from cache, not recompiled
            eng2 = _engine_stats(client, owner)
            # the respawned process never compiled: its only cache
            # traffic is the disk read of the pre-crash entry
            assert eng2["compiles"] == 0
            assert eng2["disk_hits"] == 1


def test_shards_share_one_disk_cache(tmp_path):
    """The fleet passes one cache directory to every shard (not
    per-shard subdirectories): a graph compiled anywhere in the fleet is
    readable by any other shard process."""
    with running_fleet(
        shards=2, max_batch=1, max_wait_ms=0.0, cache_dir=str(tmp_path)
    ) as (ep, router):
        assert all(
            sh.cache_dir == str(tmp_path) for sh in router.shards
        )
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            assert client.submit(BatchJob(SRC, name="warmup")).ok
        # exactly one shard compiled it, and the entry landed in the
        # single shared directory
        blobs = list(tmp_path.rglob("*"))
        assert any(p.is_file() for p in blobs)
