"""Tests for the reference interpreters, including AST-vs-CFG agreement."""

import pytest

from repro.cfg import build_cfg, insert_loop_controls
from repro.interp import run_ast, run_cfg
from repro.interp.ast_interp import StepLimitExceeded
from repro.lang import parse
from repro.machine import MemoryFault

PROGRAMS = [
    ("x := 1 + 2 * 3;", {}, {"x": 7}),
    ("x := 10 / 3; y := 10 % 3;", {}, {"x": 3, "y": 1}),
    ("x := 5 / 0; y := 5 % 0;", {}, {"x": 0, "y": 0}),  # total division
    ("x := -7 / 2;", {}, {"x": -4}),  # floor division
    ("x := 1 < 2; y := 2 < 1;", {}, {"x": 1, "y": 0}),
    ("x := 3 and 0; y := 3 or 0; z := not 3;", {}, {"x": 0, "y": 1, "z": 0}),
    ("y := x + 1;", {"x": 41}, {"x": 41, "y": 42}),
    ("if x < 5 then { y := 1; } else { y := 2; }", {"x": 3}, {"x": 3, "y": 1}),
    ("if x < 5 then { y := 1; } else { y := 2; }", {"x": 9}, {"x": 9, "y": 2}),
    (
        """
        x := 0;
        l: y := x + 1;
           x := x + 1;
           if x < 5 then goto l;
        """,
        {},
        {"x": 5, "y": 5},
    ),
    (
        "s := 0; i := 0; while i < 10 do { s := s + i; i := i + 1; }",
        {},
        {"s": 45, "i": 10},
    ),
    (
        "array a[4]; a[0] := 5; a[1] := a[0] + 1; q := a[1];",
        {},
        {"a": [5, 6, 0, 0], "q": 6},
    ),
    # unstructured: jump into a loop body region
    (
        """
        goto mid;
        top: x := x + 10;
        mid: x := x + 1;
        if x < 25 then goto top;
        """,
        {},
        {"x": 34},
    ),
]


@pytest.mark.parametrize("src,inputs,expected", PROGRAMS)
def test_ast_interpreter(src, inputs, expected):
    result = run_ast(parse(src), inputs)
    for k, v in expected.items():
        assert result[k] == v, k


@pytest.mark.parametrize("src,inputs,expected", PROGRAMS)
def test_cfg_interpreter_agrees(src, inputs, expected):
    prog = parse(src)
    cfg = build_cfg(prog)
    assert run_cfg(cfg, prog, inputs) == run_ast(prog, inputs)


@pytest.mark.parametrize("src,inputs,expected", PROGRAMS)
def test_cfg_interpreter_with_loop_controls_agrees(src, inputs, expected):
    prog = parse(src)
    g, _ = insert_loop_controls(build_cfg(prog))
    assert run_cfg(g, prog, inputs) == run_ast(prog, inputs)


def test_uninitialized_scalars_read_zero():
    assert run_ast(parse("y := x;"))["y"] == 0


def test_array_out_of_bounds_faults():
    with pytest.raises(MemoryFault):
        run_ast(parse("array a[4]; a[9] := 1;"))
    with pytest.raises(MemoryFault):
        run_ast(parse("array a[4]; x := a[0 - 1];"))


def test_step_limit():
    src = "l: x := x + 1; if x > 0 then goto l else goto l;"
    with pytest.raises(StepLimitExceeded):
        run_ast(parse(src), max_steps=1000)


def test_inputs_do_not_leak_between_runs():
    prog = parse("x := x + 1;")
    assert run_ast(prog, {"x": 1})["x"] == 2
    assert run_ast(prog, {"x": 5})["x"] == 6
    assert run_ast(prog)["x"] == 1
