"""Unit tests for the lexer."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokenKind.EOF


def test_simple_assignment():
    assert kinds("x := 1;") == [
        TokenKind.IDENT,
        TokenKind.ASSIGN,
        TokenKind.INT,
        TokenKind.SEMI,
        TokenKind.EOF,
    ]


def test_keywords_are_distinguished_from_identifiers():
    toks = tokenize("if ifx then thenx")
    assert [t.kind for t in toks[:4]] == [
        TokenKind.KW_IF,
        TokenKind.IDENT,
        TokenKind.KW_THEN,
        TokenKind.IDENT,
    ]


def test_two_char_operators_take_priority():
    assert kinds("<= >= == != :=")[:-1] == [
        TokenKind.LE,
        TokenKind.GE,
        TokenKind.EQ,
        TokenKind.NE,
        TokenKind.ASSIGN,
    ]


def test_colon_alone_is_colon():
    toks = tokenize("l: x")
    assert toks[1].kind is TokenKind.COLON


def test_comment_runs_to_end_of_line():
    toks = tokenize("x # this is a comment ;;;\n y")
    assert [t.text for t in toks[:-1]] == ["x", "y"]


def test_line_and_column_tracking():
    toks = tokenize("x\n  y := 3;")
    x, y = toks[0], toks[1]
    assert (x.location.line, x.location.column) == (1, 1)
    assert (y.location.line, y.location.column) == (2, 3)


def test_number_followed_by_letter_is_an_error():
    with pytest.raises(LexError):
        tokenize("x := 12abc;")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("x := $;")


def test_underscore_identifiers():
    toks = tokenize("_foo foo_bar2")
    assert [t.text for t in toks[:-1]] == ["_foo", "foo_bar2"]


def test_multidigit_numbers():
    toks = tokenize("12345")
    assert toks[0].text == "12345"


def test_brackets_and_braces():
    assert kinds("[ ] { } ( )")[:-1] == [
        TokenKind.LBRACKET,
        TokenKind.RBRACKET,
        TokenKind.LBRACE,
        TokenKind.RBRACE,
        TokenKind.LPAREN,
        TokenKind.RPAREN,
    ]
