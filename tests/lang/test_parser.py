"""Unit tests for the parser and static validation."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    CondGoto,
    Goto,
    If,
    IntLit,
    ParseError,
    SemanticError,
    Skip,
    UnOp,
    Var,
    While,
    parse,
)

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def test_running_example_shape():
    prog = parse(RUNNING_EXAMPLE)
    assert len(prog.body) == 4
    a0, a1, a2, c = prog.body
    assert isinstance(a0, Assign) and a0.target == Var("x")
    assert a1.label == "l"
    assert isinstance(c, CondGoto)
    assert c.then_target == "l" and c.else_target is None


def test_assign_expression_tree():
    prog = parse("z := 1 + 2 * 3;")
    (s,) = prog.body
    assert s.expr == BinOp("+", IntLit(1), BinOp("*", IntLit(2), IntLit(3)))


def test_parenthesized_expression():
    prog = parse("z := (1 + 2) * 3;")
    (s,) = prog.body
    assert s.expr == BinOp("*", BinOp("+", IntLit(1), IntLit(2)), IntLit(3))


def test_left_associativity_of_subtraction():
    prog = parse("z := 10 - 3 - 2;")
    (s,) = prog.body
    assert s.expr == BinOp("-", BinOp("-", IntLit(10), IntLit(3)), IntLit(2))


def test_unary_minus_and_not():
    prog = parse("z := -x; w := 0; w := not (x < 3);")
    assert prog.body[0].expr == UnOp("-", Var("x"))
    assert prog.body[2].expr == UnOp("not", BinOp("<", Var("x"), IntLit(3)))


def test_logical_precedence():
    prog = parse("z := a < 1 or b < 2 and c < 3;")
    (s,) = prog.body
    # and binds tighter than or
    assert isinstance(s.expr, BinOp) and s.expr.op == "or"
    assert s.expr.right.op == "and"


def test_array_declaration_and_reference():
    prog = parse("array a[10]; a[0] := 1; x := a[x + 1];")
    assert prog.arrays == {"a": 10}
    s0, s1 = prog.body
    assert isinstance(s0.target, ArrayRef)
    assert s1.expr == ArrayRef("a", BinOp("+", Var("x"), IntLit(1)))


def test_alias_declaration():
    prog = parse("alias (x, z); alias (y, z); x := 1;")
    assert prog.alias_groups == [("x", "z"), ("y", "z")]


def test_var_declaration():
    prog = parse("var a, b, c; a := 1;")
    assert prog.scalars == ["a", "b", "c"]


def test_structured_if_else():
    prog = parse("if x < 1 then { y := 1; } else { y := 2; }")
    (s,) = prog.body
    assert isinstance(s, If)
    assert len(s.then_body) == 1 and len(s.else_body) == 1


def test_structured_while():
    prog = parse("while i < 10 do { i := i + 1; }")
    (s,) = prog.body
    assert isinstance(s, While)
    assert len(s.body) == 1


def test_nested_structured_statements():
    prog = parse(
        """
        while i < 10 do {
          if i % 2 == 0 then { s := s + i; }
          i := i + 1;
        }
        """
    )
    (w,) = prog.body
    assert isinstance(w.body[0], If)


def test_skip_statement():
    prog = parse("l: skip; goto l;")
    assert isinstance(prog.body[0], Skip)
    assert prog.body[0].label == "l"


def test_cond_goto_with_else():
    prog = parse("l: if x < 5 then goto l else goto m; m: skip;")
    c = prog.body[0]
    assert isinstance(c, CondGoto) and c.else_target == "m"


def test_goto_statement():
    prog = parse("l: goto l;")
    assert isinstance(prog.body[0], Goto)


def test_program_variables_order():
    prog = parse("x := y + z; w := x;")
    assert parse("x := y + z; w := x;").variables() == ["x", "y", "z", "w"]
    assert prog.variables() == ["x", "y", "z", "w"]


def test_duplicate_label_rejected():
    with pytest.raises(SemanticError):
        parse("l: skip; l: skip;")


def test_undefined_goto_target_rejected():
    with pytest.raises(SemanticError):
        parse("goto nowhere;")


def test_undefined_cond_goto_target_rejected():
    with pytest.raises(SemanticError):
        parse("if x < 1 then goto nowhere;")


def test_undeclared_array_rejected():
    with pytest.raises(SemanticError):
        parse("a[0] := 1;")


def test_array_used_as_scalar_rejected():
    with pytest.raises(SemanticError):
        parse("array a[4]; x := a;")


def test_array_assigned_as_scalar_rejected():
    with pytest.raises(SemanticError):
        parse("array a[4]; a := 1;")


def test_duplicate_array_declaration_rejected():
    with pytest.raises(SemanticError):
        parse("array a[4], a[5]; a[0] := 1;")


def test_missing_semicolon_is_parse_error():
    with pytest.raises(ParseError):
        parse("x := 1")


def test_unterminated_block_is_parse_error():
    with pytest.raises(ParseError):
        parse("while x < 1 do { x := 1;")


def test_garbage_statement_is_parse_error():
    with pytest.raises(ParseError):
        parse(":= 3;")


def test_label_inside_structured_body():
    prog = parse("while x < 3 do { l: x := x + 1; }")
    assert prog.body[0].body[0].label == "l"


def test_goto_into_structured_body_allowed():
    # unstructured control flow is the point of the paper
    prog = parse("goto l; while x < 3 do { l: x := x + 1; }")
    assert isinstance(prog.body[0], Goto)
