"""Round-trip tests: parse -> pretty -> parse yields an equivalent AST."""

import pytest

from repro.lang import parse, pretty
from repro.lang.pretty import pretty_expr

SOURCES = [
    "x := 0;",
    "x := 1 + 2 * 3;",
    "x := (1 + 2) * 3;",
    "x := 10 - 3 - 2;",
    "x := -y;",
    "x := 0; x := not (x < 1);",
    "x := a and b or c;",
    "x := (a or b) and c;",
    "array a[8]; a[i + 1] := a[i] * 2;",
    "alias (x, z); alias (y, z); x := 1;",
    "var p, q; p := q;",
    "l: skip; goto l;",
    "l: if x < 5 then goto l else goto m; m: skip;",
    "if x == 0 then { y := 1; } else { y := 2; }",
    "while i < 10 do { i := i + 1; }",
    """
    x := 0;
    l: y := x + 1;
       x := x + 1;
       if x < 5 then goto l;
    """,
]


def strip_locations(prog):
    """AST equality ignoring source locations."""

    def stmt_key(s):
        from repro.lang import Assign, CondGoto, Goto, If, Skip, While

        if isinstance(s, Assign):
            return ("assign", s.label, s.target, s.expr)
        if isinstance(s, Goto):
            return ("goto", s.label, s.target)
        if isinstance(s, CondGoto):
            return ("condgoto", s.label, s.pred, s.then_target, s.else_target)
        if isinstance(s, Skip):
            return ("skip", s.label)
        if isinstance(s, If):
            return (
                "if",
                s.label,
                s.cond,
                tuple(stmt_key(t) for t in s.then_body),
                tuple(stmt_key(t) for t in s.else_body),
            )
        if isinstance(s, While):
            return ("while", s.label, s.cond, tuple(stmt_key(t) for t in s.body))
        raise TypeError(type(s))

    return (
        tuple(stmt_key(s) for s in prog.body),
        tuple(sorted(prog.arrays.items())),
        tuple(prog.scalars),
        tuple(prog.alias_groups),
    )


@pytest.mark.parametrize("src", SOURCES)
def test_round_trip(src):
    prog = parse(src)
    printed = pretty(prog)
    reparsed = parse(printed)
    assert strip_locations(prog) == strip_locations(reparsed)


def test_idempotent_printing():
    prog = parse(SOURCES[-1])
    once = pretty(prog)
    twice = pretty(parse(once))
    assert once == twice


def test_pretty_expr_minimal_parens():
    prog = parse("x := 1 + 2 * 3;")
    assert pretty_expr(prog.body[0].expr) == "1 + 2 * 3"
    prog = parse("x := (1 + 2) * 3;")
    assert pretty_expr(prog.body[0].expr) == "(1 + 2) * 3"


def test_pretty_preserves_nonassociative_grouping():
    prog = parse("x := 10 - (3 - 2);")
    assert parse(pretty(prog)).body[0].expr == prog.body[0].expr
