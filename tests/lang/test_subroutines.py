"""Tests for subroutines: parsing, expansion, and the Section 5 alias
derivation from call sites."""

import pytest

from repro.analysis import AliasStructure
from repro.interp import run_ast
from repro.lang import SemanticError, expand_subroutines, parse, pretty
from repro.translate import compile_program, simulate

# The paper's example, now executable: SUBROUTINE F(X, Y, Z) called as
# F(A, B, A) and F(C, D, D).
PAPER_SRC = """
sub f(x, y, z) {
  t := x + y;
  z := t;
}
a := 1; b := 2; c := 3; d := 4;
call f(a, b, a);
call f(c, d, d);
"""


def test_parse_subroutine():
    prog = parse(PAPER_SRC)
    assert set(prog.subs) == {"f"}
    assert prog.subs["f"].formals == ["x", "y", "z"]


def test_paper_formal_alias_structure():
    """F(A,B,A) makes X~Z; F(C,D,D) makes Y~Z; X and Y are never the same
    location — exactly the paper's alias structure."""
    _, report = expand_subroutines(parse(PAPER_SRC))
    assert report.formal_aliases["f"] == {("x", "z"), ("y", "z")}
    assert report.expansions["f"] == 2


def test_expansion_inherits_aliases_at_each_site():
    """Compiling F once means each site inherits BOTH formal pairs: the
    first call aliases (a,b)? no — X~Z maps to (a,a): trivial; Y~Z maps to
    (b,a).  The second call: X~Z maps to (c,d); Y~Z maps to (d,d):
    trivial."""
    flat, _ = expand_subroutines(parse(PAPER_SRC))
    groups = {tuple(sorted(g)) for g in flat.alias_groups}
    assert ("a", "b") in groups  # from Y~Z at call f(a, b, a)
    assert ("c", "d") in groups  # from X~Z at call f(c, d, d)
    alias = AliasStructure.from_program(flat)
    assert alias.related("a", "b")
    assert alias.related("c", "d")
    assert not alias.related("a", "c")


def test_expansion_renames_locals_per_site():
    flat, _ = expand_subroutines(parse(PAPER_SRC))
    stores = [
        s.target.name
        for s in flat.body
        if hasattr(s, "target") and hasattr(s.target, "name")
    ]
    t_names = [n for n in stores if "_f_t" in n]
    assert len(set(t_names)) == 2  # distinct temp per expansion


def test_expanded_program_runs_correctly():
    result = run_ast(parse(PAPER_SRC))
    # call f(a,b,a): t=a+b=3; a:=3.  call f(c,d,d): t=c+d=7; d:=7.
    assert result["a"] == 3 and result["b"] == 2
    assert result["c"] == 3 and result["d"] == 7


def test_compiles_and_matches_reference_all_schemas():
    ref = run_ast(parse(PAPER_SRC))
    for schema in ("schema1", "schema3", "schema3_opt", "memory_elim"):
        cp = compile_program(PAPER_SRC, schema=schema)
        assert simulate(cp).memory == ref, schema


def test_aliased_formals_are_access_streams():
    """Under memory elimination, the inherited may-aliasing forces a, b, c,
    d to stay in memory while unrelated scalars carry values."""
    src = PAPER_SRC + "free := 9;"
    cp = compile_program(src, schema="memory_elim")
    kinds = {s.name: s.carries_value for s in cp.streams}
    assert kinds["a"] is False and kinds["b"] is False
    assert kinds["free"] is True


def test_nested_calls_expand():
    src = """
    sub inner(p) { p := p * 2; }
    sub outer(q) { call inner(q); q := q + 1; }
    x := 5;
    call outer(x);
    """
    result = run_ast(parse(src))
    assert result["x"] == 11


def test_nested_call_alias_propagation():
    """If outer(u, v) calls inner(u, v) and some caller aliases outer's
    formals, inner's formals become aliased transitively."""
    src = """
    sub inner(p, q) { p := q + 1; }
    sub outer(u, v) { call inner(u, v); }
    call outer(w, w);
    """
    _, report = expand_subroutines(parse(src))
    assert ("p", "q") in report.formal_aliases["inner"]
    assert ("u", "v") in report.formal_aliases["outer"]


def test_labels_renamed_per_expansion():
    src = """
    sub count(n) {
      l: n := n - 1;
      if n > 0 then goto l;
    }
    x := 3; y := 2;
    call count(x);
    call count(y);
    """
    result = run_ast(parse(src))
    assert result["x"] == 0 and result["y"] == 0
    cp = compile_program(src, schema="schema2_opt")
    assert simulate(cp).memory == result


def test_call_with_label_is_a_goto_target():
    src = """
    sub bump(n) { n := n + 1; }
    goto entry;
    x := 99;
    entry: call bump(v);
    """
    result = run_ast(parse(src))
    assert result["v"] == 1 and result["x"] == 0


def test_pretty_round_trip_with_subs():
    prog = parse(PAPER_SRC)
    reparsed = parse(pretty(prog))
    assert run_ast(prog) == run_ast(reparsed)


# -- static errors -----------------------------------------------------------


def test_undefined_sub_rejected():
    with pytest.raises(SemanticError):
        parse("call nope(x);")


def test_arity_mismatch_rejected():
    with pytest.raises(SemanticError):
        parse("sub f(a, b) { a := b; } call f(x);")


def test_recursion_rejected():
    with pytest.raises(SemanticError):
        parse("sub f(a) { call f(a); } call f(x);")


def test_mutual_recursion_rejected():
    with pytest.raises(SemanticError):
        parse(
            "sub f(a) { call g(a); } sub g(b) { call f(b); } call f(x);"
        )


def test_duplicate_formals_rejected():
    with pytest.raises(SemanticError):
        parse("sub f(a, a) { a := 1; } call f(x, y);")


def test_array_argument_rejected():
    with pytest.raises(SemanticError):
        parse("array z[4]; sub f(a) { a := 1; } call f(z);")


def test_duplicate_sub_rejected():
    with pytest.raises(SemanticError):
        parse("sub f(a) { a := 1; } sub f(b) { b := 2; } call f(x);")


def test_goto_across_sub_boundary_rejected():
    with pytest.raises(SemanticError):
        parse("sub f(a) { goto outside; } outside: skip; call f(x);")
