"""Tests for k-bounded loop throttling (Monsoon-style loop control)."""

import pytest

from repro.bench.programs import CORPUS, RUNNING_EXAMPLE
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

UNROLLABLE = """
array a[64];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < 40 then goto s;
"""


def run_bounded(src, schema, k, **kw):
    cp = compile_program(src, schema=schema, **kw)
    return simulate(cp, None, MachineConfig(loop_bound=k, memory_latency=20))


def test_results_identical_for_all_bounds():
    ref = run_ast(parse(RUNNING_EXAMPLE.source))
    for k in (1, 2, 3, None):
        res = run_bounded(RUNNING_EXAMPLE.source, "memory_elim", k)
        assert res.memory == ref, k


def test_corpus_under_lockstep():
    """k=1 (the strict 'complete set of tokens' reading) is still correct
    everywhere."""
    for wl in CORPUS:
        inputs = wl.inputs[0]
        ref = run_ast(parse(wl.source), inputs)
        schema = "schema3_opt" if wl.has_aliasing() else "schema2_opt"
        cp = compile_program(wl.source, schema=schema)
        res = simulate(cp, inputs, MachineConfig(loop_bound=1))
        assert res.memory == ref, wl.name


def test_throttling_trades_parallelism_for_occupancy():
    """On a cross-iteration-parallel loop (Fig 14 pipelined stores), small
    k costs cycles but caps tokens in flight."""
    results = {
        k: run_bounded(UNROLLABLE, "memory_elim", k, parallelize_arrays=True)
        for k in (1, 4, None)
    }
    mems = {tuple(sorted((v, str(m)) for v, m in r.memory.items())) for r in results.values()}
    assert len(mems) == 1
    # cycles: k=1 slowest, unbounded fastest
    assert results[1].metrics.cycles > results[4].metrics.cycles
    assert results[4].metrics.cycles >= results[None].metrics.cycles
    # occupancy: unbounded holds the most tokens in flight
    assert (
        results[None].metrics.peak_tokens_in_flight
        >= results[1].metrics.peak_tokens_in_flight
    )


def test_lockstep_limits_iteration_overlap():
    """With k=1, no operator of iteration j+1 fires before every lap-j
    token has returned to the loop entry: the store of iteration j+1 never
    fires while iteration j's store is still in flight."""
    cp = compile_program(
        UNROLLABLE, schema="memory_elim", parallelize_arrays=True
    )
    res = simulate(
        cp, None, MachineConfig(loop_bound=1, memory_latency=20, trace=True)
    )
    stores = sorted(
        cyc for cyc, _, desc, _ in res.trace if desc == "astore a"
    )
    gaps = [b - a for a, b in zip(stores, stores[1:])]
    # lockstep: consecutive stores separated by at least a lap
    assert min(gaps) >= 2

    free = simulate(
        compile_program(
            UNROLLABLE, schema="memory_elim", parallelize_arrays=True
        ),
        None,
        MachineConfig(memory_latency=20, trace=True),
    )
    free_stores = sorted(
        cyc for cyc, _, desc, _ in free.trace if desc == "astore a"
    )
    free_gaps = [b - a for a, b in zip(free_stores, free_stores[1:])]
    assert min(free_gaps) < min(gaps) or max(free_gaps) < max(gaps)


def test_nested_loops_throttled_independently():
    wl = next(w for w in CORPUS if w.name == "nested_loops")
    ref = run_ast(parse(wl.source))
    for k in (1, 2):
        cp = compile_program(wl.source, schema="memory_elim")
        res = simulate(cp, None, MachineConfig(loop_bound=k))
        assert res.memory == ref, k


def test_bound_validation():
    with pytest.raises(ValueError):
        MachineConfig(loop_bound=0)
