"""Unit tests for machine subcomponents: contexts, memories, config,
metrics."""

import pytest

from hypothesis import given, strategies as st

from repro.lang import parse
from repro.machine import (
    ACCESS,
    Context,
    DataMemory,
    IStructureMemory,
    IStructureError,
    MachineConfig,
    MemoryFault,
    ROOT,
)
from repro.machine.context import _AccessValue
from repro.machine.metrics import Metrics


# -- contexts -----------------------------------------------------------


def test_root_context():
    assert ROOT.parent is None
    assert ROOT.depth() == 0


def test_next_iteration_preserves_activation():
    c = Context(ROOT, 7, 0)
    n = c.next_iteration()
    assert n.activation == 7 and n.iteration == 1 and n.parent is ROOT
    assert n != c
    assert hash(n) != hash(c) or n != c


def test_context_depth_and_repr():
    inner = Context(Context(ROOT, 1, 2), 3, 4)
    assert inner.depth() == 2
    assert repr(inner) == "<0.0/1.2/3.4>"


def test_contexts_hashable_distinct():
    a = Context(ROOT, 1, 0)
    b = Context(ROOT, 2, 0)
    assert len({a, b, a.next_iteration()}) == 3


def test_access_is_singleton():
    assert _AccessValue() is ACCESS
    assert repr(ACCESS) == "•"


# -- data memory ---------------------------------------------------------


def test_scalar_defaults_to_zero():
    assert DataMemory().read("x") == 0


def test_scalar_write_read():
    m = DataMemory()
    m.write("x", 5)
    assert m.read("x") == 5


def test_array_bounds():
    m = DataMemory(arrays={"a": 4})
    m.awrite("a", 3, 9)
    assert m.aread("a", 3) == 9
    with pytest.raises(MemoryFault):
        m.aread("a", 4)
    with pytest.raises(MemoryFault):
        m.awrite("a", -1, 0)
    with pytest.raises(MemoryFault):
        m.aread("b", 0)


def test_scalar_array_confusion_faults():
    m = DataMemory(arrays={"a": 4})
    with pytest.raises(MemoryFault):
        m.read("a")
    with pytest.raises(MemoryFault):
        m.write("a", 1)


def test_snapshot_copies():
    m = DataMemory(scalars={"x": 1}, arrays={"a": 2})
    snap = m.snapshot()
    snap["a"][0] = 99
    assert m.aread("a", 0) == 0


def test_copy_independent():
    m = DataMemory(scalars={"x": 1}, arrays={"a": 2})
    c = m.copy()
    c.write("x", 9)
    c.awrite("a", 0, 9)
    assert m.read("x") == 1 and m.aread("a", 0) == 0


def test_for_program_initializes_all_scalars():
    prog = parse("array a[3]; y := x;")
    m = DataMemory.for_program(prog, {"x": 7})
    snap = m.snapshot()
    assert snap["x"] == 7 and snap["y"] == 0 and snap["a"] == [0, 0, 0]


def test_for_program_rejects_array_input():
    prog = parse("array a[3]; y := a[0];")
    with pytest.raises(MemoryFault):
        DataMemory.for_program(prog, {"a": 1})


# -- I-structures ---------------------------------------------------------


def test_istructure_write_then_read():
    m = IStructureMemory({"a": 4})
    assert m.write("a", 2, 5) == []
    ok, v = m.read("a", 2, waiter=("n", "ctx"))
    assert ok and v == 5


def test_istructure_deferred_read_released_by_write():
    m = IStructureMemory({"a": 4})
    ok, _ = m.read("a", 1, waiter="w1")
    assert not ok
    ok, _ = m.read("a", 1, waiter="w2")
    assert not ok
    assert m.pending_reads() == [("a", 1)]
    waiters = m.write("a", 1, 9)
    assert waiters == ["w1", "w2"]
    assert m.pending_reads() == []


def test_istructure_double_write_rejected():
    m = IStructureMemory({"a": 2})
    m.write("a", 0, 1)
    with pytest.raises(IStructureError):
        m.write("a", 0, 2)


def test_istructure_bounds():
    m = IStructureMemory({"a": 2})
    with pytest.raises(MemoryFault):
        m.read("a", 5, waiter=None)
    with pytest.raises(MemoryFault):
        m.write("nope", 0, 1)


def test_istructure_snapshot_zeroes_empty():
    m = IStructureMemory({"a": 3})
    m.write("a", 1, 7)
    assert m.snapshot() == {"a": [0, 7, 0]}


def test_istructure_declare():
    m = IStructureMemory()
    assert not m.has("z")
    m.declare("z", 2)
    assert m.has("z")


# -- config / metrics ------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(on_clash="explode")
    with pytest.raises(ValueError):
        MachineConfig(num_pes=0)
    with pytest.raises(ValueError):
        MachineConfig(alu_latency=0)


def test_metrics_profile_list():
    m = Metrics(cycles=5, operations=4, profile={0: 1, 3: 3})
    assert m.profile_list() == [1, 0, 0, 3]
    assert m.peak_parallelism == 3
    assert m.avg_parallelism == pytest.approx(0.8)


def test_metrics_empty():
    m = Metrics()
    assert m.avg_parallelism == 0.0
    assert m.peak_parallelism == 0
    assert m.profile_list() == []


@given(st.dictionaries(st.integers(0, 50), st.integers(1, 9), max_size=20))
def test_metrics_profile_sum_invariant(profile):
    ops = sum(profile.values())
    m = Metrics(cycles=max(profile, default=0) + 1, operations=ops, profile=profile)
    assert sum(m.profile_list()) == ops
