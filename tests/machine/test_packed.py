"""Unit tests for the packed-graph lowering (:mod:`repro.machine.packed`):
array-layout invariants, CSR adjacency fidelity, pickle shipping, the
stray-port delivery guard, and the stateful-config rejections.  Behavioral
equivalence with the reference simulator lives in
``tests/engine/test_packed_differential.py``.
"""

import pickle

import pytest

from repro.bench.harness import schemas_for
from repro.bench.programs import CORPUS, RUNNING_EXAMPLE, workload
from repro.dfg.graph import Arc
from repro.dfg.nodes import OpKind, num_inputs, num_outputs
from repro.machine import (
    MachineConfig,
    MachineError,
    PackedSimulator,
    pack_graph,
)
from repro.machine.packed import (
    DC_END,
    DC_NONSTRICT,
    DC_SINGLE,
    DC_STRICT,
    OPCODE_KIND_VALUE,
)
from repro.translate import compile_program, simulate


def _packed_cases():
    for wl in CORPUS:
        for schema in schemas_for(wl):
            yield pytest.param(wl, schema, id=f"{wl.name}-{schema}")


@pytest.mark.parametrize("wl,schema", _packed_cases())
def test_lowering_invariants(wl, schema):
    """Every array of the packed form agrees with the object graph it was
    lowered from, node by node and arc by arc."""
    g = compile_program(wl.source, schema=schema).graph
    pg = pack_graph(g)

    order = sorted(g.nodes)
    assert pg.n == len(order)
    assert pg.node_ids == tuple(order)
    assert pg.node_ids[pg.start] == g.start
    assert pg.node_ids[pg.end] == g.end
    assert pg.num_arcs() == g.num_arcs()

    index_of = {nid: i for i, nid in enumerate(order)}
    for i, nid in enumerate(order):
        node = g.nodes[nid]
        assert OPCODE_KIND_VALUE[pg.opcodes[i]] == node.kind.value
        assert pg.nin[i] == num_inputs(node)
        assert pg.nout[i] == num_outputs(node)
        assert pg.extra_lat[i] == node.latency
        assert pg.describe[i] == node.describe()
        if node.kind is OpKind.END:
            assert pg.dcls[i] == DC_END
        elif node.kind in (OpKind.MERGE, OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
            assert pg.dcls[i] == DC_NONSTRICT
        elif num_inputs(node) == 1:
            assert pg.dcls[i] == DC_SINGLE
        else:
            assert pg.dcls[i] == DC_STRICT
        # the CSR rows replay consumers() exactly, port by port, in arc
        # insertion order (delivery order is observable via seq numbers)
        for p in range(num_outputs(node)):
            want = [
                (index_of[a.dst], a.dst_port) for a in g.consumers(nid, p)
            ]
            assert pg.out_arcs(i, p) == want, (wl.name, schema, nid, p)


def test_payload_pickles_smaller_than_compiled_program():
    """The shipping payload must be a fraction of the CompiledProgram
    pickle — that differential is what makes pooled runs cheap."""
    wl = workload("matmul")
    cp = compile_program(wl.source, schema="schema3_opt")
    full = pickle.dumps(cp, protocol=pickle.HIGHEST_PROTOCOL)
    payload = cp.packed_program()
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(blob) < len(full) / 2

    back = pickle.loads(blob)
    inputs = dict(wl.inputs[0])
    res = back.run(inputs)
    ref = simulate(cp, inputs, MachineConfig(sim_mode="step"))
    assert res.memory == ref.memory
    assert res.metrics.cycles == ref.metrics.cycles
    assert res.metrics.operations == ref.metrics.operations


def test_stray_port_delivery_raises_on_both_backends():
    """A token delivered to a port the node does not have must raise
    MachineError — same message — on the step loop and the packed loop,
    instead of silently widening a frame."""
    cp = compile_program(RUNNING_EXAMPLE.source, schema="schema2_opt")
    g = cp.graph
    dst = next(n.id for n in g.nodes.values() if n.kind is OpKind.BINOP)
    # tamper with the fan-out list only (the input-side index stays clean,
    # so validate() cannot see it): the START seed now also lands on a
    # port the BINOP does not have
    g._out[g.start][0].append(Arc(g.start, 0, dst, 99, False))

    with pytest.raises(MachineError) as step_err:
        simulate(cp, None, MachineConfig(sim_mode="step"))
    with pytest.raises(MachineError) as packed_err:
        simulate(cp, None, MachineConfig(sim_mode="packed"))
    assert "nonexistent input port 99" in str(step_err.value)
    assert str(step_err.value) == str(packed_err.value)


def test_stray_port_boundary_port_equal_to_nin():
    """port == num_inputs is already out of range (ports are 0-based)."""
    cp = compile_program(RUNNING_EXAMPLE.source, schema="schema2_opt")
    g = cp.graph
    dst_node = next(n for n in g.nodes.values() if n.kind is OpKind.BINOP)
    g._out[g.start][0].append(
        Arc(g.start, 0, dst_node.id, num_inputs(dst_node), False)
    )
    with pytest.raises(MachineError, match="nonexistent input port 2"):
        simulate(cp, None, MachineConfig(sim_mode="packed"))
    with pytest.raises(MachineError, match="nonexistent input port 2"):
        simulate(cp, None, MachineConfig(sim_mode="step"))


def test_packed_simulator_rejects_stateful_configs():
    cp = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    pg = pack_graph(cp.graph)
    mem, ist = cp.memories({})
    with pytest.raises(ValueError, match="num_pes"):
        PackedSimulator(pg, mem, ist, MachineConfig(num_pes=2))
    with pytest.raises(ValueError, match="loop_bound"):
        PackedSimulator(pg, mem, ist, MachineConfig(loop_bound=1))
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="packed", num_pes=2)
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="packed", loop_bound=1)


def test_backend_resolution():
    assert MachineConfig().backend() == "vectorized"
    assert MachineConfig(num_pes=2).backend() == "step"
    assert MachineConfig(loop_bound=1).backend() == "step"
    assert MachineConfig(sim_mode="step").backend() == "step"
    assert MachineConfig(sim_mode="fast").backend() == "fast"
    assert MachineConfig(sim_mode="packed").backend() == "packed"
    assert MachineConfig(sim_mode="vectorized").backend() == "vectorized"
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="vectorized", num_pes=2)
    with pytest.raises(ValueError):
        MachineConfig(sim_mode="vectorized", loop_bound=1)
