"""Tests for the multi-PE locality model (static partitioning + network
hop latency)."""

import pytest

from repro.bench.programs import CORPUS, RUNNING_EXAMPLE
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def run_net(src, inputs=None, **cfg):
    cp = compile_program(src, schema="memory_elim")
    return simulate(cp, inputs, MachineConfig(**cfg))


def test_network_latency_requires_finite_pes():
    with pytest.raises(ValueError):
        MachineConfig(network_latency=3)
    MachineConfig(network_latency=3, num_pes=4)  # fine


def test_partition_validation():
    with pytest.raises(ValueError):
        MachineConfig(partition="hash", num_pes=2)
    with pytest.raises(ValueError):
        MachineConfig(network_latency=-1, num_pes=2)


@pytest.mark.parametrize("partition", ["round_robin", "block", "random"])
def test_results_independent_of_partitioning(partition):
    ref = run_ast(parse(RUNNING_EXAMPLE.source))
    res = run_net(
        RUNNING_EXAMPLE.source,
        num_pes=4,
        network_latency=5,
        partition=partition,
        seed=7,
    )
    assert res.memory == ref


def test_corpus_under_network_model():
    for wl in CORPUS:
        if wl.name not in ("gcd", "fib", "nested_loops", "fortran_sub"):
            continue
        inputs = wl.inputs[0]
        ref = run_ast(parse(wl.source), inputs)
        schema = "schema3_opt" if wl.has_aliasing() else "schema2_opt"
        cp = compile_program(wl.source, schema=schema)
        res = simulate(
            cp,
            inputs,
            MachineConfig(num_pes=3, network_latency=4, partition="block"),
        )
        assert res.memory == ref, wl.name


def test_network_hops_cost_cycles():
    uniform = run_net(RUNNING_EXAMPLE.source, num_pes=4, network_latency=0)
    remote = run_net(
        RUNNING_EXAMPLE.source, num_pes=4, network_latency=10
    )
    assert remote.memory == uniform.memory
    assert remote.metrics.cycles > uniform.metrics.cycles


def test_single_pe_has_no_hops():
    """With one PE every node is local: network latency is irrelevant."""
    a = run_net(RUNNING_EXAMPLE.source, num_pes=1, network_latency=0)
    b = run_net(RUNNING_EXAMPLE.source, num_pes=1, network_latency=50)
    assert a.metrics.cycles == b.metrics.cycles


def test_per_pe_issue_limits_throughput():
    """In locality mode each PE issues one op per cycle."""
    src = "a := a + 1; b := b + 1; c := c + 1; d := d + 1;"
    res = run_net(src, num_pes=2, network_latency=1, partition="block")
    assert res.metrics.peak_parallelism <= 2
    assert res.memory == run_ast(parse(src))


def test_block_partitioning_beats_round_robin_here():
    """Graphs are built roughly in program order, so contiguous blocks keep
    chains local; round-robin scatters every arc across the network."""
    wl = next(w for w in CORPUS if w.name == "prime_count")
    cp_b = compile_program(wl.source, schema="memory_elim")
    cp_r = compile_program(wl.source, schema="memory_elim")
    block = simulate(
        cp_b, None, MachineConfig(num_pes=4, network_latency=8, partition="block")
    )
    rr = simulate(
        cp_r,
        None,
        MachineConfig(num_pes=4, network_latency=8, partition="round_robin"),
    )
    assert block.memory == rr.memory
    assert block.metrics.cycles < rr.metrics.cycles
