"""Unit tests for the ETS simulator on hand-built graphs."""

import pytest

from repro.dfg import DFGraph, OpKind, Seed
from repro.machine import (
    DataMemory,
    DeadlockError,
    IStructureMemory,
    MachineConfig,
    MachineError,
    SimulationLimitError,
    Simulator,
    TokenClashError,
    simulate_graph,
)


def run(g, memory=None, istructs=None, **cfg):
    return simulate_graph(g, memory, istructs, MachineConfig(**cfg))


def test_empty_program_graph():
    g = DFGraph()
    g.add(OpKind.START, seeds=())
    g.add(OpKind.END, returns=())
    res = run(g)
    assert res.metrics.operations == 0
    assert res.metrics.cycles == 0


def test_load_store_pipeline():
    """y := x through memory."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "x"),))
    end = g.add(OpKind.END, returns=(None,))
    load = g.add(OpKind.LOAD, var="x")
    store = g.add(OpKind.STORE, var="y")
    g.connect((start.id, 0), load.id, 0, is_access=True)
    g.connect((load.id, 0), store.id, 0)
    g.connect((load.id, 1), store.id, 1, is_access=True)
    g.connect((store.id, 0), end.id, 0, is_access=True)
    mem = DataMemory(scalars={"x": 42})
    res = run(g, mem)
    assert res.memory["y"] == 42
    assert res.metrics.memory_ops == 2


def test_arithmetic_and_const_trigger():
    """y := (x + 1) * 3 with value wiring."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("value", "x"),))
    end = g.add(OpKind.END, returns=("y",))
    c1 = g.add(OpKind.CONST, value=1)
    c3 = g.add(OpKind.CONST, value=3)
    add = g.add(OpKind.BINOP, op="+")
    mul = g.add(OpKind.BINOP, op="*")
    g.connect((start.id, 0), add.id, 0)
    g.connect((start.id, 0), c1.id, 0)  # trigger
    g.connect((start.id, 0), c3.id, 0)
    g.connect((c1.id, 0), add.id, 1)
    g.connect((add.id, 0), mul.id, 0)
    g.connect((c3.id, 0), mul.id, 1)
    g.connect((mul.id, 0), end.id, 0)
    res = run(g, DataMemory(scalars={"x": 5}))
    assert res.end_values == {"y": 18}
    assert res.memory["y"] == 18


def test_switch_routes_by_control():
    """switch sends data to the true output for nonzero control."""

    def build(ctrl):
        g = DFGraph()
        start = g.add(OpKind.START, seeds=(Seed("value", "d"),))
        end = g.add(OpKind.END, returns=("r",))
        c = g.add(OpKind.CONST, value=ctrl)
        sw = g.add(OpKind.SWITCH)
        m = g.add(OpKind.MERGE, nports=2)
        neg = g.add(OpKind.UNOP, op="-")
        g.connect((start.id, 0), sw.id, 0)
        g.connect((start.id, 0), c.id, 0)
        g.connect((c.id, 0), sw.id, 1)
        g.connect((sw.id, 0), m.id, 0)  # true: pass through
        g.connect((sw.id, 1), neg.id, 0)  # false: negate
        g.connect((neg.id, 0), m.id, 1)
        g.connect((m.id, 0), end.id, 0)
        return g

    res_t = run(build(1), DataMemory(scalars={"d": 7}))
    assert res_t.end_values["r"] == 7
    res_f = run(build(0), DataMemory(scalars={"d": 7}))
    assert res_f.end_values["r"] == -7


def test_synch_waits_for_all_inputs():
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "a"), Seed("access", "b")))
    end = g.add(OpKind.END, returns=(None,))
    slow = g.add(OpKind.UNOP, op="-", latency=10)
    c = g.add(OpKind.CONST, value=1)
    sy = g.add(OpKind.SYNCH, nports=2)
    g.connect((start.id, 0), c.id, 0)
    g.connect((c.id, 0), slow.id, 0)
    # discard slow's numeric output into synch (dummy semantics fine)
    g.connect((slow.id, 0), sy.id, 0)
    g.connect((start.id, 1), sy.id, 1, is_access=True)
    g.connect((sy.id, 0), end.id, 0, is_access=True)
    res = run(g)
    # synch fires only after the slow op's 10-cycle latency
    assert res.metrics.cycles > 10


def _loop_graph(limit=5):
    """Hand-built tagged loop: x starts 0; repeat x := x + 1 while x < limit.

    One LOOP_ENTRY channel carrying x's value.
    """
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("value", "x"),))
    end = g.add(OpKind.END, returns=("x",))
    le = g.add(OpKind.LOOP_ENTRY, loop_id=0, nchannels=1)
    lx = g.add(OpKind.LOOP_EXIT, loop_id=0, nchannels=1)
    c1 = g.add(OpKind.CONST, value=1)
    cl = g.add(OpKind.CONST, value=limit)
    add = g.add(OpKind.BINOP, op="+")
    lt = g.add(OpKind.BINOP, op="<")
    sw = g.add(OpKind.SWITCH)
    g.connect((start.id, 0), le.id, 0)
    g.connect((le.id, 0), add.id, 0)
    g.connect((le.id, 0), c1.id, 0)
    g.connect((le.id, 0), cl.id, 0)
    g.connect((c1.id, 0), add.id, 1)
    g.connect((add.id, 0), lt.id, 0)
    g.connect((cl.id, 0), lt.id, 1)
    g.connect((add.id, 0), sw.id, 0)
    g.connect((lt.id, 0), sw.id, 1)
    g.connect((sw.id, 0), le.id, 1)  # backedge channel
    g.connect((sw.id, 1), lx.id, 0)
    g.connect((lx.id, 0), end.id, 0)
    return g


def test_tagged_loop_executes():
    res = run(_loop_graph(5), DataMemory(scalars={"x": 0}))
    assert res.end_values["x"] == 5


def test_tagged_loop_many_iterations():
    res = run(_loop_graph(100), DataMemory(scalars={"x": 0}))
    assert res.end_values["x"] == 100


def test_loop_iterations_have_distinct_contexts():
    sim = Simulator(
        _loop_graph(3),
        DataMemory(scalars={"x": 0}),
        config=MachineConfig(trace=True),
    )
    res = sim.run()
    add_id = next(n.id for n in sim.graph.nodes.values() if n.kind is OpKind.BINOP and n.op == "+")
    ctxs = {ctx for (_, nid, _, ctx) in res.trace if nid == add_id}
    assert len(ctxs) == 3  # one context per iteration


def test_deadlock_detected():
    """END starves because a synch input is fed by a never-taken branch."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "a"),))
    end = g.add(OpKind.END, returns=(None,))
    sy = g.add(OpKind.SYNCH, nports=2)
    g.connect((start.id, 0), sy.id, 0, is_access=True)
    c1 = g.add(OpKind.CONST, value=1)
    sw = g.add(OpKind.SWITCH)
    g.connect((start.id, 0), c1.id, 0)
    g.connect((start.id, 0), sw.id, 0)
    g.connect((c1.id, 0), sw.id, 1)
    g.connect((sw.id, 1), sy.id, 1)  # false branch never taken (control=1)
    sink = g.add(OpKind.SYNCH, nports=1)
    g.connect((sw.id, 0), sink.id, 0)  # true branch goes to a sink
    g.connect((sy.id, 0), end.id, 0, is_access=True)  # never arrives
    with pytest.raises(DeadlockError):
        run(g)


def _clash_graph():
    """Two same-tag tokens race into one strict input slot: both START
    tokens merge into add's port 0 while the slow constant delays port 1,
    so the second port-0 token finds the slot occupied."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("value", "x"), Seed("value", "x")))
    end = g.add(OpKind.END, returns=("r",))
    add = g.add(OpKind.BINOP, op="+")
    c = g.add(OpKind.CONST, value=1, latency=10)
    m = g.add(OpKind.MERGE, nports=2)
    g.connect((start.id, 0), m.id, 0)
    g.connect((start.id, 1), m.id, 1)
    g.connect((m.id, 0), add.id, 0)
    g.connect((start.id, 0), c.id, 0)
    g.connect((c.id, 0), add.id, 1)
    g.connect((add.id, 0), end.id, 0)
    return g


def test_token_clash_raises():
    with pytest.raises(TokenClashError):
        run(_clash_graph(), DataMemory(scalars={"x": 1}))


def test_token_clash_recorded_mode():
    """Recording mode queues the extra token and completes; the clash is
    reported in the metrics (the graph is not a valid ETS computation)."""
    res = run(_clash_graph(), DataMemory(scalars={"x": 1}), on_clash="record")
    assert res.metrics.clashes == 1
    assert len(res.clashes) == 1
    assert res.end_values["r"] == 2


def test_array_load_store():
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "a"),))
    end = g.add(OpKind.END, returns=(None,))
    ci = g.add(OpKind.CONST, value=2)
    cj = g.add(OpKind.CONST, value=3)
    ld = g.add(OpKind.ALOAD, var="a")
    st = g.add(OpKind.ASTORE, var="a")
    g.connect((start.id, 0), ci.id, 0)
    g.connect((start.id, 0), cj.id, 0)
    g.connect((ci.id, 0), ld.id, 0)
    g.connect((start.id, 0), ld.id, 1, is_access=True)
    g.connect((cj.id, 0), st.id, 0)
    g.connect((ld.id, 0), st.id, 1)
    g.connect((ld.id, 1), st.id, 2, is_access=True)
    g.connect((st.id, 0), end.id, 0, is_access=True)
    mem = DataMemory(arrays={"a": 8})
    mem.awrite("a", 2, 99)
    res = run(g, mem)
    assert res.memory["a"][3] == 99  # a[3] := a[2]


def test_istructure_deferred_read():
    """ILOAD issued before the ISTORE still gets the value."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "t"),))
    end = g.add(OpKind.END, returns=("r", None))
    c0 = g.add(OpKind.CONST, value=0)
    ld = g.add(OpKind.ILOAD, var="ia")
    slow5 = g.add(OpKind.CONST, value=5, latency=20)
    c0b = g.add(OpKind.CONST, value=0)
    st = g.add(OpKind.ISTORE, var="ia")
    g.connect((start.id, 0), c0.id, 0)
    g.connect((c0.id, 0), ld.id, 0)  # read fires early
    g.connect((start.id, 0), slow5.id, 0)
    g.connect((start.id, 0), c0b.id, 0)
    g.connect((c0b.id, 0), st.id, 0)
    g.connect((slow5.id, 0), st.id, 1)  # write arrives late
    g.connect((ld.id, 0), end.id, 0)
    g.connect((st.id, 0), end.id, 1, is_access=True)
    ist = IStructureMemory({"ia": 4})
    res = run(g, None, ist)
    assert res.end_values["r"] == 5
    assert res.memory["ia"][0] == 5


def test_istructure_never_written_reads_default_at_quiescence():
    """A deferred read no write can ever satisfy releases with the default
    0 once the machine drains — matching zero-initialized updatable
    arrays (see IStructureMemory.release_pending_with_default)."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "t"),))
    end = g.add(OpKind.END, returns=("r",))
    c0 = g.add(OpKind.CONST, value=0)
    ld = g.add(OpKind.ILOAD, var="ia")
    g.connect((start.id, 0), c0.id, 0)
    g.connect((c0.id, 0), ld.id, 0)
    g.connect((ld.id, 0), end.id, 0)
    res = run(g, None, IStructureMemory({"ia": 2}))
    assert res.end_values["r"] == 0


def test_finite_pes_same_result_slower():
    g = _loop_graph(20)
    wide = run(g, DataMemory(scalars={"x": 0}))
    narrow = run(_loop_graph(20), DataMemory(scalars={"x": 0}), num_pes=1)
    assert wide.end_values == narrow.end_values
    assert narrow.metrics.cycles >= wide.metrics.cycles
    assert narrow.metrics.peak_parallelism == 1


def test_seeded_scheduling_is_deterministic_in_result():
    results = set()
    for seed in (1, 2, 3, 4):
        res = run(
            _loop_graph(10), DataMemory(scalars={"x": 0}), num_pes=2, seed=seed
        )
        results.add(res.end_values["x"])
    assert results == {10}


def test_cycle_limit():
    with pytest.raises(SimulationLimitError):
        run(_loop_graph(10**9), DataMemory(scalars={"x": 0}), max_cycles=500)


def test_metrics_profile_consistency():
    res = run(_loop_graph(5), DataMemory(scalars={"x": 0}))
    m = res.metrics
    assert sum(m.profile.values()) == m.operations
    assert m.avg_parallelism > 0
    assert m.peak_parallelism >= 1
    assert len(m.profile_list()) <= m.cycles + 1
    assert "ops in" in m.summary()


def test_value_token_on_value_port_required():
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("access", "x"),))
    end = g.add(OpKind.END, returns=("r",))
    u = g.add(OpKind.UNOP, op="-")
    g.connect((start.id, 0), u.id, 0)  # access token into arithmetic: bug
    g.connect((u.id, 0), end.id, 0)
    with pytest.raises(MachineError):
        run(g)


def test_occupancy_samples_and_profile_hook():
    """The simulator records token-occupancy rows at high-water marks and
    forwards each sample to profile_hook when one is installed."""
    g = _loop_graph(5)
    mem = DataMemory(scalars={"x": 0})
    res = run(g, mem)
    assert res.occupancy, "at least the first token is a high-water mark"
    peaks = [row[1] for row in res.occupancy]
    assert peaks == sorted(peaks)  # strictly rising high-water marks
    assert max(peaks) == res.metrics.peak_tokens_in_flight
    for row in res.occupancy:
        cycle, tokens, frames, enabled = row
        assert isinstance(row, list) and len(row) == 4
        assert 0 <= cycle <= res.metrics.cycles
        assert tokens >= 1 and frames >= 0 and enabled >= 0

    seen = []
    sim = Simulator(g, DataMemory(scalars={"x": 0}))
    sim.profile_hook = lambda *row: seen.append(list(row))
    res2 = sim.run()
    assert seen == res2.occupancy
