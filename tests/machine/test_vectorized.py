"""Unit tests for the vectorized graph-as-matrices backend
(:mod:`repro.machine.vectorized`): delivery-plan compilation invariants,
the flat frame-store layout, degenerate graph shapes through all four
backends, the numpy feature probe, and the occupancy-comparability
contract the oracle pins.  Full behavioral equivalence lives in
``tests/engine/test_packed_differential.py``.
"""

import pytest

from repro.bench.harness import schemas_for
from repro.bench.programs import CORPUS
from repro.machine import MachineConfig, VectorizedSimulator, pack_graph
from repro.machine.vectorized import (
    _NP_BULK_MIN,
    _P_BULK,
    _P_SINGLE,
    _P_WALK,
    _probe_numpy,
)
from repro.translate import compile_program, simulate

ALL_MODES = ("step", "fast", "packed", "vectorized")


def _vec(cp, inputs=None, **cfg):
    pg = pack_graph(cp.graph)
    mem, ist = cp.memories(dict(inputs or {}))
    return VectorizedSimulator(pg, mem, ist, MachineConfig(**cfg))


# -- delivery-plan lowering invariants ---------------------------------------


def _plan_cases():
    for wl in CORPUS:
        for schema in schemas_for(wl):
            yield pytest.param(wl, schema, id=f"{wl.name}-{schema}")


@pytest.mark.parametrize("wl,schema", _plan_cases())
def test_plans_replay_csr_rows_exactly(wl, schema):
    """Every delivery plan, whatever its mode, must cover the CSR row it
    was compiled from arc for arc, in arc order."""
    cp = compile_program(wl.source, schema=schema)
    pg = pack_graph(cp.graph)
    sim = _vec(cp)

    # fbase is the CSR prefix sum of input arities
    total = 0
    for i in range(pg.n):
        assert sim._fbase[i] == total
        total += pg.nin[i]

    assert len(sim._plans) == pg.n
    for i in range(pg.n):
        assert len(sim._plans[i]) == pg.nout[i]
        for p in range(pg.nout[i]):
            arcs = pg.out_arcs(i, p)
            plan = sim._plans[i][p]
            if not arcs:
                assert plan is None
                continue
            assert plan[1] == len(arcs)
            if plan[0] == _P_SINGLE:
                assert list(plan[2]) == [d for d, _ in arcs]
                for d, dp in arcs:
                    assert pg.dcls[d] == 2 and dp == 0
            else:
                walk = plan[2]
                assert [(d, dp) for d, dp, *_ in walk] == arcs
                for d, dp, cls, nin, slot in walk:
                    assert cls == pg.dcls[d] and nin == pg.nin[d]
                    if cls == 3 and dp < nin:
                        assert slot == sim._fbase[d] + dp
                    else:
                        assert slot == -1
            if plan[0] == _P_BULK:
                # bulk prefix: wide, all-strict, distinct frames; the
                # suffix holds the remaining arcs in row order
                k = len(plan[3])
                assert k >= _NP_BULK_MIN
                assert plan[6] == walk[k:]
                assert all(c == 3 for _, _, c, _, _ in walk[:k])
                assert all(c != 3 for _, _, c, _, _ in walk[k:])
                assert len({d for d, *_ in walk[:k]}) == k


def test_bulk_plan_compiles_for_wide_strict_rows():
    """A value consumed by many two-input nodes compiles to a bulk plan
    (with numpy) even though the row ends in a non-strict END arc."""
    n = _NP_BULK_MIN + 8
    src = "x := 7;\ny := 5;\n" + "\n".join(
        f"v{i} := x + y;" for i in range(n)
    )
    cp = compile_program(src, schema="memory_elim")
    sim = _vec(cp)
    bulk = [
        plan
        for per_port in sim._plans
        for plan in per_port
        if plan is not None and plan[0] == _P_BULK
    ]
    if _probe_numpy() is None:  # pragma: no cover - environment-dependent
        assert not bulk
        return
    assert sim._np is not None
    assert len(bulk) == 2  # x's row and y's row
    for plan in bulk:
        assert len(plan[3]) == n  # the strict consumers
        assert len(plan[6]) == 1  # the trailing END arc

    # and the bulk path is observably exact against the reference
    vec = simulate(cp, None, MachineConfig(sim_mode="vectorized"))
    step = simulate(cp, None, MachineConfig(sim_mode="step"))
    assert vec.memory == step.memory
    assert vec.metrics == step.metrics


def test_no_numpy_env_var_disables_bulk(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert _probe_numpy() is None
    n = _NP_BULK_MIN + 8
    src = "x := 7;\ny := 5;\n" + "\n".join(
        f"v{i} := x + y;" for i in range(n)
    )
    cp = compile_program(src, schema="memory_elim")
    sim = _vec(cp)
    assert sim._np is None
    assert all(
        plan is None or plan[0] in (_P_SINGLE, _P_WALK)
        for per_port in sim._plans
        for plan in per_port
    )
    # pure-python storage: plain lists and a bytearray, not numpy arrays
    assert isinstance(sim._fvals, list)
    assert isinstance(sim._filled, bytearray)


def test_narrow_graphs_skip_numpy_storage():
    """Without any bulk-eligible row the frame store stays pure python
    even when numpy is importable — scalar list indexing is faster."""
    cp = compile_program("x := 1;\ny := x + 2;\n", schema="memory_elim")
    sim = _vec(cp)
    assert sim._np is None
    assert isinstance(sim._fvals, list)


# -- degenerate graph shapes through all four backends -----------------------


def _run_all_modes(src, inputs=None, schema=None):
    out = {}
    for mode in ALL_MODES:
        kwargs = {"schema": schema} if schema else {}
        cp = compile_program(src, **kwargs)
        out[mode] = simulate(
            cp, dict(inputs or {}), MachineConfig(sim_mode=mode)
        )
    return out


def _assert_agree(results):
    ref = results["step"]
    for mode, res in results.items():
        assert res.backend == mode
        assert res.memory == ref.memory, mode
        assert res.end_values == ref.end_values, mode
        assert res.metrics.cycles == ref.metrics.cycles, mode
        assert res.metrics.operations == ref.metrics.operations, mode
        assert res.metrics.by_kind == ref.metrics.by_kind, mode


def test_empty_program_zero_arc_graph():
    """The empty program lowers to a two-node, zero-arc graph (START and
    END with no returns): every backend must terminate immediately with
    empty observables rather than deadlock."""
    cp = compile_program("")
    assert len(cp.graph.nodes) == 2 and cp.graph.num_arcs() == 0
    results = _run_all_modes("")
    _assert_agree(results)
    vec = results["vectorized"]
    assert vec.memory == {} and vec.end_values == {}
    assert vec.metrics.cycles == 0 and vec.metrics.operations == 0


def test_single_statement_program():
    results = _run_all_modes("x := 1;")
    _assert_agree(results)
    assert results["vectorized"].memory == {"x": 1}


def test_unconsumed_seed_ports():
    """A variable that is written and never read seeds a START port with
    no consumers (a None plan): the token must be dropped, not leaked
    into the in-flight count (which would stall quiescence)."""
    results = _run_all_modes("x := 1;\ny := 2;\n", schema="schema1")
    _assert_agree(results)
    assert results["vectorized"].memory["y"] == 2


def test_max_fan_out_node_all_backends():
    """One node fanning out past the bulk threshold behaves identically
    on every backend, with and without the numpy path."""
    n = _NP_BULK_MIN + 8
    src = "x := 7;\ny := 5;\n" + "\n".join(
        f"v{i} := x + y;" for i in range(n)
    )
    for schema in ("schema1", "memory_elim"):
        results = _run_all_modes(src, schema=schema)
        _assert_agree(results)
        assert all(
            results["vectorized"].memory[f"v{i}"] == 12 for i in range(n)
        )


def test_max_fan_out_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    n = _NP_BULK_MIN + 8
    src = "x := 7;\ny := 5;\n" + "\n".join(
        f"v{i} := x + y;" for i in range(n)
    )
    results = _run_all_modes(src, schema="memory_elim")
    _assert_agree(results)


# -- occupancy comparability (the oracle's documented allowlist) -------------


def test_occupancy_comparable_within_event_driven_family():
    """Occupancy timelines are sampled at in-flight peaks, so they are
    *guaranteed* identical only across the event-driven family (fast/
    packed/vectorized share checkpoint placement).  The per-cycle step
    loop offers no such guarantee — its samples often coincide but are
    not contractual — so the oracle compares occupancy and the
    waiting-frame peak inside an explicit allowlist instead of fuzzily
    comparing every mode pair."""
    from repro.validate.oracle import OCCUPANCY_COMPARABLE_MODES, SIM_MODES

    assert OCCUPANCY_COMPARABLE_MODES == {"fast", "packed", "vectorized"}
    assert "step" not in OCCUPANCY_COMPARABLE_MODES
    assert set(SIM_MODES) == set(ALL_MODES)

    wl = next(w for w in CORPUS if w.name == "gcd")
    cp = compile_program(wl.source)
    inputs = dict(wl.inputs[0])
    res = {
        mode: simulate(cp, dict(inputs), MachineConfig(sim_mode=mode))
        for mode in ("fast", "packed", "vectorized")
    }
    fam = [[tuple(s) for s in res[m].occupancy]
           for m in ("fast", "packed", "vectorized")]
    assert fam[0] == fam[1] == fam[2]
    assert (res["fast"].metrics.peak_waiting_frames
            == res["packed"].metrics.peak_waiting_frames
            == res["vectorized"].metrics.peak_waiting_frames)


# -- config wiring -----------------------------------------------------------


def test_vectorized_rejects_stateful_configs():
    cp = compile_program("x := 1;", schema="memory_elim")
    pg = pack_graph(cp.graph)
    mem, ist = cp.memories({})
    with pytest.raises(ValueError, match="num_pes"):
        VectorizedSimulator(pg, mem, ist, MachineConfig(num_pes=2))
    with pytest.raises(ValueError, match="loop_bound"):
        VectorizedSimulator(pg, mem, ist, MachineConfig(loop_bound=1))


def test_packed_blob_honors_vectorized_backend():
    """CompiledProgram payloads shipped to pool workers run on the
    backend the config resolves to — including vectorized."""
    cp = compile_program("x := 3;\ny := x * 2;\n")
    payload = cp.packed_program()
    res = payload.run({}, config=MachineConfig(sim_mode="vectorized"))
    assert res.backend == "vectorized"
    assert res.memory["y"] == 6
    ref = payload.run({}, config=MachineConfig(sim_mode="packed"))
    assert ref.backend == "packed"
    assert ref.memory == res.memory
    assert ref.metrics == res.metrics
