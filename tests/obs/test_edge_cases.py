"""Edge cases in the observability layer: trace-store eviction behavior
at capacity, percentile summaries on degenerate sample rings, and the
metrics RPC when tracing is globally disabled."""

from repro.engine.latency import LatencySummary, percentile
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, activate, deactivate, new_trace_id

import pytest


# -- trace-store LRU at capacity --------------------------------------------


def _record_one(t: Tracer, tid: str) -> None:
    token = activate(tid)
    try:
        with t.span("s"):
            pass
    finally:
        deactivate(token)


def test_no_eviction_at_exact_capacity():
    t = Tracer(enabled=False, max_traces=3)
    tids = [new_trace_id() for _ in range(3)]
    for tid in tids:
        _record_one(t, tid)
    for tid in tids:
        assert len(t.spans(tid)) == 1  # full but nothing evicted


def test_eviction_is_insertion_ordered_not_touch_ordered():
    """The store is an insertion-order LRU over *traces*: appending more
    spans to an old trace does not refresh it, so a long-lived trace
    cannot pin the store while newer short traces get evicted."""
    t = Tracer(enabled=False, max_traces=2)
    a, b, c = (new_trace_id() for _ in range(3))
    _record_one(t, a)
    _record_one(t, b)
    _record_one(t, a)  # touch a again: does NOT move it to the MRU end
    _record_one(t, c)  # over capacity: a (oldest insertion) goes
    assert t.spans(a) == []
    assert len(t.spans(b)) == 1
    assert len(t.spans(c)) == 1


def test_ingest_respects_per_trace_span_cap():
    t = Tracer(max_spans=2)
    tid = new_trace_id()
    wire = [
        Span(trace_id=tid, span_id=f"s{i}", parent_id=None, name=f"n{i}",
             start=float(i), end=float(i) + 1.0).to_wire()
        for i in range(5)
    ]
    t.ingest(wire)
    kept = t.spans(tid)
    assert [s.name for s in kept] == ["n0", "n1"]  # first two win


def test_take_on_unknown_trace_is_empty_not_error():
    t = Tracer()
    assert t.take("never-recorded") == []


# -- percentile summaries on degenerate rings --------------------------------


def test_percentile_of_empty_samples_raises():
    with pytest.raises(ValueError):
        percentile([], 50.0)


def test_summary_from_empty_samples_is_all_zero():
    s = LatencySummary.from_samples([])
    assert s.count == 0
    assert s.p50 == s.p95 == s.p99 == s.max == 0.0


def test_single_sample_percentiles_collapse_to_it():
    s = LatencySummary.from_samples([7.25])
    assert s.count == 1
    assert s.p50 == s.p95 == s.p99 == s.max == 7.25


def test_histogram_empty_ring_snapshot():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    snap = reg.snapshot()["histograms"]["lat"]
    assert snap["count"] == 0 and snap["sum"] == 0.0
    assert h.samples() == []
    h.observe(3.0)
    assert LatencySummary.from_samples(h.samples()).p99 == 3.0


# -- metrics RPC with tracing disabled ---------------------------------------


def test_metrics_rpc_with_tracing_disabled():
    """The service metrics/trace ops must work when the global tracer is
    off: counters still flow (they live in the registry, not the
    tracer), and span fetches come back empty instead of erroring."""
    from repro.engine import BatchJob
    from repro.obs.trace import tracer
    from repro.service import ServiceClient, running_server

    assert not tracer.enabled  # default: REPRO_TRACE unset in tests
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            assert client.submit(BatchJob("x := 1 + 2;", name="m")).ok
            m = client.metrics()
            assert m["counters"]["service.jobs.submitted"] >= 1
            # no trace id was assigned spans: fetch is empty, not a fault
            assert client.trace("no-such-trace") == []
            assert client.ping()["ok"]
