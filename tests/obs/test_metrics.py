"""Metrics registry unit suite: instrument semantics, thread safety,
and snapshot shape."""

import threading

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("jobs")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("depth")
    g.set(7)
    g.inc(-2)
    assert g.value == 5


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.gauge("g") is reg.gauge("g")


def test_histogram_buckets_and_samples():
    h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0, 0.2):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(555.7)
    assert snap["buckets"] == [[1.0, 2], [10.0, 1], [100.0, 1], ["+Inf", 1]]
    assert h.samples() == [0.5, 5.0, 50.0, 500.0, 0.2]


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(10.0, 1.0))


def test_threaded_counter_increments_are_not_lost():
    reg = MetricsRegistry()
    c = reg.counter("contended")
    h = reg.histogram("obs", buckets=(1.0,))

    def work():
        for _ in range(1000):
            c.inc()
            h.observe(0.5)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000
    assert h.count == 8000


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h", buckets=(1.0,)).observe(0.3)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    import json

    json.dumps(snap)  # must be JSON-serializable as-is (RPC body)
