"""Span tracer unit suite: activation rules, nesting, propagation,
bounded storage, wire round trips, and tree rendering."""

import threading

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    current_trace_id,
    deactivate,
    new_trace_id,
    render_tree,
)


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    with t.span("work") as sp:
        assert sp is None  # the no-op context manager
    assert current_trace_id() is None


def test_enabled_tracer_records_root_span():
    t = Tracer(enabled=True)
    with t.span("work", kind="unit") as sp:
        assert sp is not None
        tid = sp.trace_id
    spans = t.spans(tid)
    assert [s.name for s in spans] == ["work"]
    assert spans[0].parent_id == ""
    assert spans[0].attrs["kind"] == "unit"
    assert spans[0].end >= spans[0].start


def test_activation_enables_recording_without_global_switch():
    t = Tracer(enabled=False)
    tid = new_trace_id()
    token = activate(tid)
    try:
        assert current_trace_id() == tid
        with t.span("job"):
            with t.span("inner"):
                pass
    finally:
        deactivate(token)
    assert current_trace_id() is None
    names = {s.name for s in t.spans(tid)}
    assert names == {"job", "inner"}


def test_nesting_sets_parent_ids():
    t = Tracer(enabled=True)
    with t.span("outer") as outer:
        with t.span("mid") as mid:
            with t.span("leaf") as leaf:
                pass
    assert mid.parent_id == outer.span_id
    assert leaf.parent_id == mid.span_id
    assert outer.trace_id == mid.trace_id == leaf.trace_id


def test_exception_recorded_and_context_restored():
    t = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with t.span("boom") as sp:
            raise RuntimeError("nope")
    assert current_trace_id() is None
    (recorded,) = t.spans(sp.trace_id)
    assert recorded.attrs["error"] == "RuntimeError: nope"


def test_threads_carry_independent_contexts():
    t = Tracer(enabled=False)
    tids = [new_trace_id() for _ in range(4)]

    def work(tid):
        token = activate(tid)
        try:
            with t.span("threaded"):
                pass
        finally:
            deactivate(token)

    threads = [threading.Thread(target=work, args=(tid,)) for tid in tids]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    for tid in tids:
        spans = t.spans(tid)
        assert len(spans) == 1 and spans[0].trace_id == tid


def test_take_pops_and_storage_is_bounded():
    t = Tracer(enabled=False, max_traces=2, max_spans=3)
    tids = [new_trace_id() for _ in range(3)]
    for tid in tids:
        token = activate(tid)
        try:
            for _ in range(5):
                with t.span("s"):
                    pass
        finally:
            deactivate(token)
    assert t.spans(tids[0]) == []  # evicted: only 2 traces retained
    assert len(t.spans(tids[1])) == 3  # per-trace span cap
    taken = t.take(tids[2])
    assert len(taken) == 3
    assert t.spans(tids[2]) == []


def test_wire_round_trip_and_ingest():
    t = Tracer(enabled=True)
    with t.span("ship", stage="x") as sp:
        pass
    wire = sp.to_wire()
    back = Span.from_wire(wire)
    assert back == sp
    other = Tracer()
    other.ingest([wire])
    assert other.spans(sp.trace_id)[0].name == "ship"


def test_render_tree_indents_children_and_orphans_are_roots():
    t = Tracer(enabled=True)
    with t.span("root") as root:
        with t.span("child"):
            pass
    spans = t.spans(root.trace_id)
    orphan = Span(root.trace_id, "beef0000", "missing-parent", "orphan",
                  0.0, 0.001)
    tree = render_tree(spans + [orphan])
    lines = tree.splitlines()
    assert any(line.startswith("root") for line in lines)
    assert any(line.startswith("  child") for line in lines)
    assert any(line.startswith("orphan") for line in lines)
    assert "ms" in tree
