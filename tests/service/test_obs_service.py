"""Observability through the service: trace-id propagation client →
queue → batch → reply, the ``metrics``/``trace`` ops, and the stats op
sitting on the same registry."""

import asyncio

from repro.engine import BatchJob
from repro.obs.trace import new_trace_id, render_tree
from repro.service import ServiceClient, running_server
from repro.service.protocol import MAX_LINE, decode, encode, job_to_wire

SRC = "x := 1 + 2; y := x * 3;"


def test_trace_id_propagates_end_to_end():
    """A client-supplied trace id survives the whole pipeline: the raw
    reply frame echoes it, the result's spans all carry it, and both
    worker-side (engine.*) and server-side (service.*) spans arrive."""
    tid = new_trace_id()
    with running_server() as (ep, _server):
        async def body():
            reader, writer = await asyncio.open_unix_connection(
                ep["path"], limit=MAX_LINE
            )
            job = BatchJob(SRC, name="traced", trace_id=tid)
            writer.write(encode(
                {"op": "submit", "id": "t0", "job": job_to_wire(job)}
            ))
            await writer.drain()
            frame = decode(await reader.readline())
            writer.close()
            return frame

        frame = asyncio.run(body())
    assert frame["ok"] and frame["id"] == "t0"
    assert frame["trace_id"] == tid  # reply frame carries the id
    result = frame["result"]
    assert result["trace_id"] == tid
    names = [s["name"] for s in result["spans"]]
    assert "engine.job" in names  # worker side
    assert "engine.simulate" in names
    assert "service.queue" in names  # server side
    assert "service.batch" in names
    assert all(s["trace_id"] == tid for s in result["spans"])
    tree = render_tree(result["spans"])
    assert "service.batch" in tree and "engine.job" in tree


def test_server_assigns_trace_id_when_absent():
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            br = client.submit(BatchJob(SRC, name="untagged"))
    assert br.ok
    assert br.trace_id  # server minted one
    assert br.spans and all(s["trace_id"] == br.trace_id for s in br.spans)


def test_trace_rpc_returns_server_held_spans():
    tid = new_trace_id()
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            br = client.submit(BatchJob(SRC, trace_id=tid))
            assert br.trace_id == tid
            spans = client.trace(tid)
            assert client.trace("0" * 16) == []  # unknown id: empty
            client._send({"op": "trace"})  # missing trace_id
            bad = client._wait_control("trace")
            assert not bad["ok"] and bad["error"] == "bad_request"
    names = {s["name"] for s in spans}
    assert {"engine.job", "service.queue", "service.batch"} <= names
    assert all(s["trace_id"] == tid for s in spans)


def test_metrics_rpc_and_stats_share_the_registry():
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            for i in range(3):
                assert client.submit(BatchJob(SRC, name=f"m{i}")).ok
            metrics = client.metrics()
            stats = client.stats()
    counters = metrics["counters"]
    assert counters["service.jobs.submitted"] == 3
    assert counters["service.jobs.completed"] == 3
    hist = metrics["histograms"]
    for stage in ("queue", "compile", "sim", "total"):
        h = hist[f"service.latency_ms.{stage}"]
        assert h["count"] == 3
        assert sum(n for _, n in h["buckets"]) == 3
    assert metrics["gauges"]["service.queue_depth"] == 0
    assert metrics["gauges"]["engine.cache.compiles"] >= 1
    # stats' counters and latency summaries are views of the registry
    assert stats["submitted"] == counters["service.jobs.submitted"]
    assert stats["completed"] == counters["service.jobs.completed"]
    assert stats["latency_ms"]["total"]["count"] == \
        hist["service.latency_ms.total"]["count"]


def test_async_client_metrics_and_trace():
    from repro.service import AsyncServiceClient

    tid = new_trace_id()
    with running_server() as (ep, _server):
        async def body():
            async with AsyncServiceClient(**ep) as client:
                br = await client.submit(BatchJob(SRC, trace_id=tid))
                metrics = await client.metrics()
                spans = await client.trace(tid)
                return br, metrics, spans

        br, metrics, spans = asyncio.run(body())
    assert br.ok and br.trace_id == tid
    assert metrics["counters"]["service.jobs.submitted"] == 1
    assert spans and all(s["trace_id"] == tid for s in spans)
