"""Wire-codec round trips: everything the differential guarantee covers
must survive encode -> JSON text -> decode unchanged."""

import json

import pytest

from repro.engine import BatchJob, GraphCache, run_batch
from repro.machine import MachineConfig
from repro.service import job_from_wire, job_to_wire, result_from_wire, result_to_wire
from repro.service.protocol import decode, encode
from repro.translate import CompileOptions

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _json_round(d: dict) -> dict:
    return json.loads(json.dumps(d))


def test_job_round_trip_full():
    job = BatchJob(
        source=SRC,
        options=CompileOptions(schema="schema1", parallel_reads=True),
        inputs={"x": 3},
        config=MachineConfig(num_pes=2, seed=7, memory_latency=4),
        name="full",
    )
    assert job_from_wire(_json_round(job_to_wire(job))) == job


def test_job_round_trip_defaults():
    job = BatchJob(source=SRC)
    back = job_from_wire(_json_round(job_to_wire(job)))
    assert back == job
    assert back.inputs is None and back.config is None


def test_result_round_trip_is_bit_identical():
    (br,) = run_batch([BatchJob(SRC, name="rt")], cache=GraphCache())
    back = result_from_wire(_json_round(result_to_wire(br)))
    # dataclass equality covers memory, metrics (incl. integer-keyed
    # profile), graph stats, timings, and flags — all of it must survive
    assert back == br
    assert back.result.metrics.profile == br.result.metrics.profile
    assert all(
        isinstance(k, int) for k in back.result.metrics.profile
    ), "profile keys must decode back to ints"


def test_result_round_trip_with_trace_and_finite_pes():
    job = BatchJob(
        SRC, config=MachineConfig(num_pes=1, seed=3, trace=True), name="tr"
    )
    (br,) = run_batch([job], cache=GraphCache())
    assert br.result.trace  # trace entries are (cycle, node, desc, ctx)
    back = result_from_wire(_json_round(result_to_wire(br)))
    assert back == br
    assert isinstance(back.result.trace[0], tuple)


def test_error_result_round_trip():
    (br,) = run_batch([BatchJob("x := ;;;;", name="bad")], cache=GraphCache())
    assert not br.ok
    back = result_from_wire(_json_round(result_to_wire(br)))
    assert back == br
    assert not back.ok and back.result is None and back.stats is None
    assert back.error == br.error and back.traceback == br.traceback


def test_frame_codec():
    assert decode(encode({"op": "ping"})) == {"op": "ping"}
    with pytest.raises(ValueError):
        decode(b"[1, 2, 3]\n")  # frames must be objects
    with pytest.raises(ValueError):
        decode(b"not json\n")
