"""Service lifecycle suite: round trips, backpressure, deadlines,
cancellation, graceful drain, stats, and the differential guarantee that
the service is bit-identical to a direct ``engine.run_batch()``."""

import socket
import time

import pytest

from repro.bench.harness import corpus_jobs
from repro.engine import BatchJob, GraphCache, run_batch
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.service import (
    JobRejected,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    running_server,
)
from repro.translate import CompileOptions

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _slow_src(n: int = 20000) -> str:
    """~18us per iteration on the packed backend: n=20000 is ~0.4s."""
    return f"i := 0;\nl: i := i + 1;\n   if i < {n} then goto l;\n"


def _wait(cond, timeout=10.0, interval=0.01):
    t0 = time.monotonic()
    while not cond():
        if time.monotonic() - t0 > timeout:
            raise TimeoutError("condition not reached")
        time.sleep(interval)


def test_submit_result_round_trip():
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            br = client.submit(BatchJob(SRC, name="rt"))
            assert br.ok
            assert br.result.memory == run_ast(parse(SRC))
            again = client.submit(BatchJob(SRC, name="rt2"))
            assert again.cache_hit  # the server-resident cache persists
            assert again.result.memory == br.result.memory


def test_tcp_endpoint():
    with running_server(host="127.0.0.1", port=0) as (ep, _server):
        assert ep["port"] > 0
        with ServiceClient(**ep) as client:
            assert client.ping()["ok"]
            assert client.submit(BatchJob(SRC)).ok


@pytest.mark.parametrize(
    "max_batch,max_wait_ms", [(1, 0.0), (4, 25.0), (32, 5.0)]
)
def test_differential_bit_identical(tmp_path, max_batch, max_wait_ms):
    """For any batcher setting, service results equal a direct
    run_batch() of the same jobs: memory, op counts, cycles, profiles."""
    jobs = corpus_jobs(programs=["gcd", "fib"])
    jobs.append(BatchJob(SRC, config=MachineConfig(num_pes=2, seed=11),
                         name="finite_pes"))
    direct = run_batch(jobs, cache=GraphCache())
    with running_server(
        max_batch=max_batch, max_wait_ms=max_wait_ms
    ) as (ep, _server):
        with ServiceClient(**ep) as client:
            via_service = client.submit_many(jobs)
    assert len(via_service) == len(direct)
    for d, s in zip(direct, via_service):
        assert s.ok, s.error
        assert s.name == d.name
        assert s.result.memory == d.result.memory
        assert s.result.end_values == d.result.end_values
        assert s.result.metrics == d.result.metrics  # ops/cycles/profile
        assert s.result.fast_path == d.result.fast_path
        assert s.stats == d.stats


def test_queue_full_backpressure():
    with running_server(
        max_queue=1, max_batch=1, max_wait_ms=0.0
    ) as (ep, server):
        with ServiceClient(**ep) as client:
            slow = client.start(BatchJob(_slow_src(), name="slow"))
            # wait until the slow job is in flight and the queue is empty
            _wait(lambda: server.batcher.in_flight == 1
                  and server.batcher.depth == 0)
            queued = client.start(BatchJob(SRC, name="queued"))
            overflow = client.start(BatchJob(SRC, name="overflow"))
            with pytest.raises(JobRejected) as exc:
                client.result(overflow)
            assert exc.value.code == "queue_full"
            # the server stays live: accepted jobs still complete
            assert client.result(slow).ok
            assert client.result(queued).ok
            st = client.stats()
            assert st["rejected"] == 1
            assert st["completed"] == 2


def test_deadline_expires_in_queue():
    with running_server(
        max_batch=1, max_wait_ms=0.0
    ) as (ep, server):
        with ServiceClient(**ep) as client:
            slow = client.start(BatchJob(_slow_src(), name="slow"))
            _wait(lambda: server.batcher.in_flight == 1)
            doomed = client.start(BatchJob(SRC, name="doomed"),
                                  deadline_ms=80.0)
            with pytest.raises(JobRejected) as exc:
                client.result(doomed)
            assert exc.value.code == "deadline_expired"
            assert client.result(slow).ok
            assert client.stats()["expired"] == 1


def test_deadline_expires_mid_run():
    with running_server(max_batch=1) as (ep, _server):
        with ServiceClient(**ep) as client:
            req = client.start(BatchJob(_slow_src(), name="slow"),
                               deadline_ms=80.0)
            t0 = time.monotonic()
            with pytest.raises(JobRejected) as exc:
                client.result(req)
            assert exc.value.code == "deadline_expired"
            # the rejection arrives at the deadline, not after the job
            assert time.monotonic() - t0 < 0.3


def test_client_cancellation():
    with running_server(
        max_batch=1, max_wait_ms=0.0
    ) as (ep, server):
        with ServiceClient(**ep) as client:
            slow = client.start(BatchJob(_slow_src(), name="slow"))
            _wait(lambda: server.batcher.in_flight == 1)
            victim = client.start(BatchJob(SRC, name="victim"))
            assert client.cancel(victim) is True
            with pytest.raises(JobRejected) as exc:
                client.result(victim)
            assert exc.value.code == "cancelled"
            # a running job cannot be cancelled; an unknown id is not found
            assert client.cancel(slow) is False
            assert client.cancel("no-such-id") is False
            assert client.result(slow).ok
            assert client.stats()["cancelled"] == 1


def test_graceful_shutdown_drains_everything():
    """Shutdown mid-stream: every accepted job still gets its result
    (zero lost), new submits are refused, then the listener goes away."""
    jobs = [BatchJob(SRC, name=f"j{i}") for i in range(6)]
    with running_server(max_batch=2, max_wait_ms=50.0) as (
        ep, _server,
    ):
        path = ep["path"]
        with ServiceClient(**ep) as client:
            anchor = client.start(BatchJob(_slow_src(), name="anchor"))
            ids = [client.start(j) for j in jobs]
            client.shutdown()
            with pytest.raises(JobRejected) as exc:
                client.submit(BatchJob(SRC, name="late"))
            assert exc.value.code == "shutting_down"
            assert client.result(anchor).ok
            results = [client.result(i) for i in ids]
            assert [r.name for r in results] == [j.name for j in jobs]
            assert all(r.ok for r in results)
            for r in results:
                assert r.result.memory == run_ast(parse(SRC))
    # after the drain the socket is gone
    with pytest.raises((ConnectionRefusedError, FileNotFoundError)):
        socket.socket(socket.AF_UNIX, socket.SOCK_STREAM).connect(path)


def test_job_error_is_isolated():
    with running_server(max_batch=8) as (ep, _server):
        with ServiceClient(**ep) as client:
            results = client.submit_many([
                BatchJob(SRC, name="good0"),
                BatchJob("x := ;;;; nope", name="bad"),
                BatchJob(SRC, name="good1"),
            ])
            good0, bad, good1 = results
            assert good0.ok and good1.ok
            assert not bad.ok
            assert "Error" in bad.error and "Traceback" in bad.traceback
            st = client.stats()
            assert st["completed"] == 2 and st["failed"] == 1


def test_stats_reports_live_state():
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            client.submit_many([BatchJob(SRC, name=f"s{i}")
                                for i in range(4)])
            st = client.stats()
            assert st["queue_depth"] == 0 and st["in_flight"] == 0
            assert st["submitted"] == st["completed"] == 4
            assert 0.0 <= st["cache"]["hit_rate"] <= 1.0
            assert st["cache"]["jobs_hit"] == 3  # same source, warm cache
            assert st["jobs_per_s"] > 0
            for stage in ("queue", "compile", "sim", "total"):
                lat = st["latency_ms"][stage]
                assert lat["count"] == 4
                assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]


def test_malformed_frames_do_not_kill_connection():
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            client.connect()
            client._sock.sendall(b"this is not json\n")
            frame = client._read_frame()
            assert frame["ok"] is False and frame["error"] == "bad_request"
            client._sock.sendall(b'{"op": "frobnicate"}\n')
            frame = client._read_frame()
            assert frame["ok"] is False and frame["error"] == "bad_request"
            client._sock.sendall(b'{"op": "submit"}\n')  # missing id/job
            frame = client._read_frame()
            assert frame["ok"] is False and frame["error"] == "bad_request"
            # the connection is still perfectly usable
            assert client.ping()["ok"]
            assert client.submit(BatchJob(SRC)).ok


def test_duplicate_request_id_rejected():
    with running_server(
        max_batch=1, max_wait_ms=0.0
    ) as (ep, server):
        with ServiceClient(**ep) as client:
            slow = client.start(BatchJob(_slow_src(), name="slow"))
            _wait(lambda: server.batcher.in_flight == 1)
            queued = client.start(BatchJob(SRC, name="q"))
            from repro.service.protocol import encode, job_to_wire

            client._sock.sendall(encode({
                "op": "submit", "id": queued,
                "job": job_to_wire(BatchJob(SRC)),
            }))
            frame = client._read_frame()
            assert frame["error"] == "bad_request"
            assert client.result(slow).ok and client.result(queued).ok


def test_pool_mode_matches_direct(tmp_path):
    jobs = corpus_jobs(programs=["gcd"], schemas=["schema1", "schema2_opt"])
    direct = run_batch(jobs, cache=GraphCache())
    with running_server(
        pool_size=2, cache_dir=str(tmp_path / "cache")
    ) as (ep, _server):
        with ServiceClient(**ep) as client:
            via_service = client.submit_many(jobs)
    for d, s in zip(direct, via_service):
        assert s.ok
        assert s.result.memory == d.result.memory
        assert s.result.metrics == d.result.metrics
        assert s.stats == d.stats


def test_async_client():
    import asyncio

    from repro.service import AsyncServiceClient

    with running_server() as (ep, _server):
        async def body():
            async with AsyncServiceClient(**ep) as client:
                results = await asyncio.gather(*[
                    client.submit(BatchJob(SRC, name=f"a{i}"))
                    for i in range(5)
                ])
                st = await client.stats()
                assert (await client.ping())["ok"]
                assert await client.cancel("nope") is False
                return results, st

        results, st = asyncio.run(body())
    assert all(r.ok for r in results)
    assert {r.name for r in results} == {f"a{i}" for i in range(5)}
    assert st["completed"] >= 1


def test_per_job_options_and_inputs_respected():
    gcd = corpus_jobs(programs=["gcd"], schemas=["schema1"])[0]
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            br = client.submit(gcd)
            assert br.ok
            assert br.result.memory == run_ast(parse(gcd.source), gcd.inputs)
            narrow = client.submit(BatchJob(
                SRC, options=CompileOptions(schema="memory_elim"),
                config=MachineConfig(num_pes=1, seed=1), name="narrow",
            ))
            assert narrow.ok and not narrow.result.fast_path


def test_ephemeral_socket_fallback_allocates_private_dir(monkeypatch):
    """running_server removes dirname(path) on teardown, so the
    long-TMPDIR fallback must hand back a path inside a fresh dedicated
    directory — never a bare file in the shared system temp dir."""
    import os
    import shutil
    import tempfile

    from repro.service import testing as svc_testing

    monkeypatch.setattr(svc_testing, "_SUN_PATH_MAX", 1)  # force fallback
    path = svc_testing.ephemeral_socket_path()
    d = os.path.dirname(path)
    try:
        assert d not in ("/", "/tmp", tempfile.gettempdir())
        assert os.path.isdir(d)
        assert len(path.encode()) < 100  # fallback path is still bindable
    finally:
        shutil.rmtree(d, ignore_errors=True)


def test_oversized_frame_isolated_to_its_connection():
    """A frame over max_line gets that client an error reply and a
    closed connection; the server loop and other connections are
    untouched."""
    with running_server(max_line=1024) as (ep, _server):
        with ServiceClient(**ep) as good:
            assert good.submit(BatchJob(SRC, name="before")).ok
            with ServiceClient(**ep) as bad:
                bad.connect()
                bad._sock.sendall(b'{"op": "ping", "pad": "' +
                                  b"x" * 4096 + b'"}\n')
                frame = bad._read_frame()
                assert frame["ok"] is False
                assert frame["error"] == "bad_request"
                assert "max_line" in frame["detail"]
                # the offender's connection is then closed...
                with pytest.raises(ServiceError):
                    bad._read_frame()
            # ...while the rest of the server keeps working
            assert good.submit(BatchJob(SRC, name="after")).ok
            assert good.ping()["ok"]


def test_dispatch_error_does_not_kill_connection():
    """A frame that explodes inside dispatch (here: a non-numeric
    deadline) gets an error reply, not a dead server or connection."""
    with running_server() as (ep, _server):
        with ServiceClient(**ep) as client:
            client._send({"op": "submit", "id": "boom",
                          "job": {"source": SRC, "options": {}},
                          "deadline_ms": "not-a-number"})
            frame = client._wait_submit("boom")
            assert frame["ok"] is False
            assert frame["error"] == "internal_error"
            assert client.submit(BatchJob(SRC, name="after")).ok


def test_client_connect_retry_backoff():
    """A client with retries tolerates a server that is still binding
    its socket; with retries=0 the first refusal is fatal (legacy)."""
    import threading

    from repro.service.testing import ephemeral_socket_path

    path = ephemeral_socket_path("retry")
    with pytest.raises((FileNotFoundError, ConnectionError)):
        ServiceClient(path=path).connect()  # nothing listening yet

    host = None

    def late_start():
        nonlocal host
        from repro.service.testing import ServerThread

        time.sleep(0.3)
        host = ServerThread(ServiceConfig(path=path))
        host.start()

    t = threading.Thread(target=late_start)
    t.start()
    try:
        with ServiceClient(path=path, retries=30, backoff_s=0.05) as client:
            assert client.ping()["ok"]
    finally:
        t.join()
        if host is not None:
            host.stop()


def test_async_client_connect_retry():
    import asyncio
    import threading

    from repro.service import AsyncServiceClient
    from repro.service.testing import ServerThread, ephemeral_socket_path

    path = ephemeral_socket_path("aretry")
    host = None

    def late_start():
        nonlocal host
        time.sleep(0.3)
        host = ServerThread(ServiceConfig(path=path))
        host.start()

    t = threading.Thread(target=late_start)
    t.start()

    async def go():
        async with AsyncServiceClient(
            path=path, retries=30, backoff_s=0.05
        ) as client:
            return await client.submit(BatchJob(SRC, name="a"))

    try:
        assert asyncio.run(go()).ok
    finally:
        t.join()
        if host is not None:
            host.stop()
