"""Service-level tiering and snapshot tests: promotion through the
``tiers`` RPC, bit-identical results across the promotion boundary, the
on-drain snapshot, and the warm restart that makes the first
resubmission a cache hit with tier state intact."""

import os

from repro.engine import BatchJob
from repro.engine.cache import SNAPSHOT_MANIFEST
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.service import ServiceClient, running_server

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def _tiering_kwargs(**extra):
    kw = dict(
        max_batch=1,
        max_wait_ms=0.0,
        tiering=True,
        tier_entry="fast",
        tier_thresholds=(2, 4),
        tier_decay_s=0.0,  # no decay race in tests
    )
    kw.update(extra)
    return kw


def test_hot_graph_promotes_and_results_stay_identical():
    with running_server(**_tiering_kwargs()) as (ep, server):
        with ServiceClient(**ep) as client:
            results = [client.submit(BatchJob(SRC, name=f"j{i}"))
                       for i in range(6)]
            assert all(r.ok for r in results)
            expect = run_ast(parse(SRC))
            first = results[0].result
            for r in results:
                assert r.result.memory == expect
                assert r.result.memory == first.memory
                assert r.result.end_values == first.end_values
                assert r.result.metrics == first.metrics
            server.tiering.join_prewarms(timeout=30)

            tiers = client.tiers()
            assert tiers["enabled"]
            assert tiers["entry_tier"] == "fast"
            assert tiers["thresholds"] == [2, 4]
            assert tiers["graphs"] == 1
            assert tiers["promotions"] >= 1
            top = tiers["top"][0]
            assert top["hits"] == 6
            # with the cache attached, promotion into the blob tiers
            # waits for the pre-warm; by now it has landed
            assert top["prewarmed"]
            assert client.submit(BatchJob(SRC, name="post")).ok
            assert client.tiers()["top"][0]["tier"] in (
                "packed", "vectorized"
            )


def test_pinned_jobs_bypass_the_controller():
    with running_server(**_tiering_kwargs()) as (ep, _server):
        with ServiceClient(**ep) as client:
            for i in range(4):
                br = client.submit(BatchJob(
                    SRC, config=MachineConfig(sim_mode="step"),
                    name=f"p{i}",
                ))
                assert br.ok
                assert br.result.backend == "step"  # never re-tiered
            assert client.tiers()["graphs"] == 0


def test_tiers_rpc_on_non_tiering_server():
    with running_server(max_batch=1, max_wait_ms=0.0) as (ep, _server):
        with ServiceClient(**ep) as client:
            tiers = client.tiers()
            assert tiers["enabled"] is False
            assert tiers["snapshot"]["dir"] is None


def test_drain_snapshot_then_warm_restart(tmp_path):
    snap_dir = str(tmp_path / "snap")
    kw = _tiering_kwargs(snapshot_dir=snap_dir)

    with running_server(**kw) as (ep, _server):
        with ServiceClient(**ep) as client:
            for i in range(6):
                assert client.submit(BatchJob(SRC, name=f"w{i}")).ok
            cold = client.tiers()
            assert cold["snapshot"]["restored"] == 0
    # graceful drain wrote the snapshot
    assert os.path.exists(os.path.join(snap_dir, SNAPSHOT_MANIFEST))

    with running_server(**kw) as (ep, _server):
        with ServiceClient(**ep) as client:
            tiers = client.tiers()
            assert tiers["snapshot"]["restored"] >= 1
            top = tiers["top"][0]
            assert top["hits"] == 6  # tier state survived the restart
            assert top["tier"] in ("packed", "vectorized")
            assert top["prewarmed"]  # snapshot entries carry the blob

            br = client.submit(BatchJob(SRC, name="after-restart"))
            assert br.ok
            assert br.cache_hit  # warm: no recompile on first contact
            assert br.result.memory == run_ast(parse(SRC))
            # the restored hotness keeps the key on its promoted tier
            assert br.result.backend in ("packed", "vectorized")


def test_snapshot_interval_writes_without_drain(tmp_path):
    snap_dir = str(tmp_path / "snap")
    kw = _tiering_kwargs(
        snapshot_dir=snap_dir, snapshot_interval_s=0.05
    )
    import time

    with running_server(**kw) as (ep, _server):
        with ServiceClient(**ep) as client:
            assert client.submit(BatchJob(SRC, name="a")).ok
            manifest = os.path.join(snap_dir, SNAPSHOT_MANIFEST)
            deadline = time.monotonic() + 10.0
            while not os.path.exists(manifest):
                assert time.monotonic() < deadline, "no periodic snapshot"
                time.sleep(0.02)
            writes = client.tiers()["snapshot"]["writes"]
            assert writes >= 1
    # and the drain still writes a final one on top
    loaded = os.path.exists(os.path.join(snap_dir, SNAPSHOT_MANIFEST))
    assert loaded


def test_corrupt_snapshot_is_a_cold_start_not_a_crash(tmp_path):
    snap_dir = tmp_path / "snap"
    snap_dir.mkdir()
    (snap_dir / SNAPSHOT_MANIFEST).write_text("{definitely not json")
    kw = _tiering_kwargs(snapshot_dir=str(snap_dir))
    with running_server(**kw) as (ep, _server):
        with ServiceClient(**ep) as client:
            assert client.tiers()["snapshot"]["restored"] == 0
            assert client.tiers()["graphs"] == 0  # no tier state adopted
            br = client.submit(BatchJob(SRC, name="cold"))
            assert br.ok  # cold start, but the server still serves
