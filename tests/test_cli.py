"""Tests for the command-line front end."""

import pytest

from repro.__main__ import main

SRC = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


@pytest.fixture
def srcfile(tmp_path):
    p = tmp_path / "prog.df"
    p.write_text(SRC)
    return str(p)


def test_run_prints_final_memory(srcfile, capsys):
    assert main(["run", srcfile]) == 0
    out = capsys.readouterr().out
    assert "x = 5" in out and "y = 5" in out


def test_run_with_inputs(tmp_path, capsys):
    p = tmp_path / "p.df"
    p.write_text("y := x * 2;")
    main(["run", str(p), "--input", "x=21"])
    assert "y = 42" in capsys.readouterr().out


def test_run_schema_choice(srcfile, capsys):
    main(["run", srcfile, "--schema", "memory_elim"])
    assert "x = 5" in capsys.readouterr().out


def test_run_machine_options(srcfile, capsys):
    main(["run", srcfile, "--pes", "2", "--mem-latency", "7", "--seed", "3"])
    assert "x = 5" in capsys.readouterr().out


def test_bad_input_format(srcfile):
    with pytest.raises(SystemExit):
        main(["run", srcfile, "--input", "x=abc"])


def test_stats(srcfile, capsys):
    assert main(["stats", srcfile]) == 0
    out = capsys.readouterr().out
    assert "nodes" in out and "switch" in out
    assert "loops: 1" in out


def test_dot_dfg(srcfile, capsys):
    main(["dot", srcfile])
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "style=dotted" in out


def test_dot_cfg(srcfile, capsys):
    main(["dot", srcfile, "--stage", "cfg"])
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "join" in out


def test_trace(srcfile, capsys):
    main(["trace", srcfile])
    out = capsys.readouterr().out
    assert "store x" in out or "loop_entry" in out


def test_schemas_listing(capsys):
    main(["schemas"])
    out = capsys.readouterr().out
    assert "schema2_opt" in out and "memory_elim" in out


def test_stdin(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("z := 7;"))
    main(["run", "-"])
    assert "z = 7" in capsys.readouterr().out


def test_transforms_flags(tmp_path, capsys):
    p = tmp_path / "arr.df"
    p.write_text(
        """
        array a[16];
        i := 0;
        s: i := i + 1;
           a[i] := i;
           if i < 10 then goto s;
        """
    )
    main(
        [
            "run",
            str(p),
            "--schema",
            "memory_elim",
            "--parallelize-arrays",
            "--istructures",
        ]
    )
    out = capsys.readouterr().out
    assert "i = 10" in out


def test_bench_sweep_table(capsys, tmp_path):
    assert (
        main(
            [
                "bench",
                "--programs",
                "gcd,fib",
                "--schemas",
                "schema1,memory_elim",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path),
                "--repeat",
                "2",
                "--verify",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    out = captured.out
    assert "gcd" in out and "fib" in out
    assert "schema1" in out and "memory_elim" in out
    # the second sweep reuses every graph from the shared disk cache
    assert "cache hits 4/4" in captured.err


def test_bench_rejects_unknown_schema():
    with pytest.raises(SystemExit):
        main(["bench", "--schemas", "nope"])


def test_bench_rejects_empty_selection():
    # an aliased program cannot compile under schema2: zero legal jobs
    with pytest.raises(SystemExit):
        main(["bench", "--programs", "fortran_alias", "--schemas", "schema2"])


def test_trace_spans_renders_pipeline_tree(srcfile, capsys):
    assert main(["trace", srcfile, "--spans"]) == 0
    out = capsys.readouterr().out
    assert "cli.compile" in out and "cli.simulate" in out
    for stage in ("compile.lex", "compile.parse", "compile.cfg",
                  "compile.translate"):
        assert stage in out
    assert "ms" in out
    # stage spans are indented under cli.compile
    assert "\n  compile.parse" in out


def test_trace_spans_through_service(srcfile, tmp_path, capsys):
    import uuid

    from repro.service import running_server

    sock = f"/tmp/repro-cli-{uuid.uuid4().hex[:8]}.sock"
    with running_server(path=sock):
        assert main(["trace", srcfile, "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "service.batch" in out and "engine.job" in out
        assert "compile.parse" in out  # worker pipeline spans made it back

        assert main(["metrics", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "service.jobs.submitted" in out
        assert "service.latency_ms.total" in out

        assert main(["metrics", "--socket", sock, "--json"]) == 0
        import json

        m = json.loads(capsys.readouterr().out)
        assert m["counters"]["service.jobs.submitted"] == 1


def test_trace_requires_file_or_trace_id():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_bench_sim_mode_selects_backend(capsys, tmp_path):
    assert (
        main(
            [
                "bench",
                "--programs",
                "gcd",
                "--schemas",
                "schema1",
                "--sim-mode",
                "step",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "sim backends — step: 1 jobs" in err

    assert (
        main(
            [
                "bench",
                "--programs",
                "gcd",
                "--schemas",
                "schema1",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    # auto resolves to the vectorized interpreter on the idealized machine
    assert "sim backends — vectorized: 1 jobs" in err

    assert (
        main(
            [
                "bench",
                "--programs",
                "gcd",
                "--schemas",
                "schema1",
                "--sim-mode",
                "vectorized",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "sim backends — vectorized: 1 jobs" in err


def test_bench_rejects_bad_sim_mode():
    with pytest.raises(SystemExit):
        main(["bench", "--programs", "gcd", "--sim-mode", "warp"])
