"""Golden structural snapshots of the paper-figure graphs.

These pin the *exact* operator/arc inventory the constructions produce for
the paper's own examples, guarding against silent drift in the translation
(a wiring change that stays semantically correct but alters the structure
the figures describe would trip these, prompting a deliberate update).
"""

from repro.bench.programs import FIGURE_9, RUNNING_EXAMPLE
from repro.dfg import graph_stats
from repro.translate import compile_program


def snapshot(src, schema, **kw):
    st = graph_stats(compile_program(src, schema=schema, **kw).graph)
    return {
        "nodes": st.nodes,
        "arcs": st.arcs,
        "access_arcs": st.access_arcs,
        "switches": st.switches,
        "merges": st.merges,
        "synchs": st.synchs,
        "loads": st.loads,
        "stores": st.stores,
        "loop_controls": st.loop_controls,
    }


def test_golden_running_example_schema1():
    assert snapshot(RUNNING_EXAMPLE.source, "schema1") == {
        "nodes": 17,
        "arcs": 24,
        "access_arcs": 14,
        "switches": 1,
        "merges": 1,
        "synchs": 0,
        "loads": 3,
        "stores": 3,
        "loop_controls": 0,
    }


def test_golden_running_example_schema2():
    assert snapshot(RUNNING_EXAMPLE.source, "schema2") == {
        "nodes": 21,
        "arcs": 33,
        "access_arcs": 22,
        "switches": 2,
        "merges": 2,
        "synchs": 0,
        "loads": 3,
        "stores": 3,
        "loop_controls": 2,
    }


def test_golden_running_example_schema2_opt():
    assert snapshot(RUNNING_EXAMPLE.source, "schema2_opt") == {
        "nodes": 19,
        "arcs": 31,
        "access_arcs": 20,
        "switches": 2,
        "merges": 0,
        "synchs": 0,
        "loads": 3,
        "stores": 3,
        "loop_controls": 2,
    }


def test_golden_running_example_memory_elim():
    assert snapshot(RUNNING_EXAMPLE.source, "memory_elim") == {
        "nodes": 13,
        "arcs": 22,
        "access_arcs": 4,
        "switches": 2,
        "merges": 0,
        "synchs": 0,
        "loads": 0,
        "stores": 0,
        "loop_controls": 2,
    }


def test_golden_figure9_schema2_vs_opt():
    base = snapshot(FIGURE_9.source, "schema2")
    opt = snapshot(FIGURE_9.source, "schema2_opt")
    assert base["switches"] == 3 and base["merges"] == 3
    assert opt["switches"] == 1 and opt["merges"] == 1
    assert base["loads"] == opt["loads"]
    assert base["stores"] == opt["stores"]


def test_golden_fig14_pipeline():
    st = snapshot(
        "array x[16];\n"
        "i := 0;\n"
        "s: i := i + 1;\n"
        "   x[i] := 1;\n"
        "   if i < 10 then goto s;",
        "memory_elim",
        parallelize_arrays=True,
    )
    # the rewrite adds: done-synch, done-switch, exit-synch; LE/LX each
    # gain a channel (structure of Figure 14(c))
    assert st["synchs"] == 2
    assert st["switches"] == 3  # i, a, and the completion switch
    assert st["loop_controls"] == 2
