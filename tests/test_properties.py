"""Hypothesis property tests over randomly generated programs and CFGs.

The central properties:

* every translation schema executes every generated program to the same
  final memory as the sequential reference interpreter;
* execution is confluent: scheduling order and machine width never change
  results;
* Theorem 1 holds on random graphs;
* analysis invariants (dominance, intervals, covers) hold on random inputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    AliasStructure,
    Cover,
    between_brute_force,
    cd_plus,
)
from repro.analysis.dominance import dominator_tree, postdominator_tree
from repro.bench.generators import random_program, random_structured_program
from repro.cfg import NodeKind, build_cfg, decompose, find_loops
from repro.engine import GraphCache
from repro.interp import run_ast, run_cfg
from repro.lang import parse, pretty
from repro.machine import MachineConfig
from repro.translate import CompileOptions, SCHEMAS, compile_program, simulate

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
MED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10**6)


def gen(seed: int, unstructured: bool, arrays: bool):
    if unstructured:
        return random_program(seed, arrays=arrays)
    return random_structured_program(seed, arrays=arrays)


# joint randomization of the compile-option and machine-config spaces:
# the equivalence property must hold at every point of the cross product,
# not just at the defaults


compile_options = st.builds(
    CompileOptions,
    schema=st.sampled_from(SCHEMAS),
    cover=st.sampled_from(("singletons", "whole", "alias_classes")),
    optimize=st.booleans(),
    parallel_reads=st.booleans(),
    forward_stores=st.booleans(),
    parallelize_arrays=st.booleans(),
    use_istructures=st.booleans(),
)


@st.composite
def machine_configs(draw):
    """A random valid MachineConfig: PE count, latencies, k-bound,
    locality model, and scheduler mode drawn jointly (respecting the
    config's own validity rules: network latency needs finite PEs, the
    forced fast path excludes arbitration state)."""
    num_pes = draw(st.one_of(st.none(), st.integers(1, 4)))
    loop_bound = draw(st.one_of(st.none(), st.integers(1, 3)))
    modes = ["auto", "step"]
    if num_pes is None and loop_bound is None:
        modes.append("fast")
        modes.append("packed")
    return MachineConfig(
        num_pes=num_pes,
        alu_latency=draw(st.integers(1, 3)),
        memory_latency=draw(st.integers(1, 6)),
        loop_bound=loop_bound,
        seed=draw(st.one_of(st.none(), st.integers(0, 10**6))),
        network_latency=draw(st.integers(0, 4)) if num_pes is not None else 0,
        partition=draw(st.sampled_from(("round_robin", "block", "random"))),
        sim_mode=draw(st.sampled_from(modes)),
    )


# ---------------------------------------------------------------------------
# front end
# ---------------------------------------------------------------------------


@MED
@given(seeds, st.booleans(), st.booleans())
def test_pretty_print_round_trip(seed, unstructured, arrays):
    prog = gen(seed, unstructured, arrays)
    reparsed = parse(pretty(prog))
    assert run_ast(prog) == run_ast(reparsed)


@MED
@given(seeds, st.booleans(), st.booleans())
def test_cfg_interpreter_agrees_with_ast(seed, unstructured, arrays):
    prog = gen(seed, unstructured, arrays)
    cfg = build_cfg(prog)
    assert run_cfg(cfg, prog) == run_ast(prog)


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------


@MED
@given(seeds, st.booleans())
def test_dominance_invariants(seed, unstructured):
    prog = gen(seed, unstructured, False)
    cfg = build_cfg(prog)
    dom = dominator_tree(cfg)
    pdom = postdominator_tree(cfg)
    for n in cfg.nodes:
        if n != cfg.entry:
            assert dom.dominates(dom.idom[n], n)
            assert dom.idom[n] != n
        if n != cfg.exit:
            assert pdom.dominates(pdom.idom[n], n)
    # entry dominates everything; exit postdominates everything
    for n in cfg.nodes:
        assert dom.dominates(cfg.entry, n)
        assert pdom.dominates(cfg.exit, n)


@SLOW
@given(seeds, st.booleans())
def test_theorem_1_on_random_graphs(seed, unstructured):
    prog = gen(seed, unstructured, False)
    cfg = build_cfg(prog)
    pdom = postdominator_tree(cfg)
    plus = cd_plus(cfg)
    nodes = sorted(cfg.nodes)
    for f in nodes:
        for n in nodes:
            assert (f in plus[n]) == between_brute_force(cfg, f, n, pdom)


@MED
@given(seeds, st.booleans())
def test_interval_decomposition_invariants(seed, unstructured):
    prog = gen(seed, unstructured, False)
    cfg = build_cfg(prog)
    g, loops = decompose(cfg)
    g.validate()
    for lp in loops:
        # after insertion, the header's only predecessor is the loop entry
        assert g.pred_ids(lp.header) == [lp.entry_node]
        # loop entry collects at least one external entry and one backedge
        assert len(g.pred_ids(lp.entry_node)) >= 2
        # exit nodes sit on edges leaving the cyclic region
        for lx in lp.exit_nodes:
            (succ,) = g.succ_ids(lx)
            assert succ not in lp.body
        # nesting: child's body (plus its controls) is inside the parent's
        if lp.parent is not None:
            parent = loops[lp.parent]
            assert lp.body <= parent.body
            assert lp.entry_node in parent.body


@MED
@given(seeds, st.booleans())
def test_loop_refs_cover_body_refs(seed, unstructured):
    prog = gen(seed, unstructured, False)
    cfg = build_cfg(prog)
    try:
        loops = find_loops(cfg)
    except Exception:
        from repro.cfg import split_irreducible
        cfg = split_irreducible(cfg)
        loops = find_loops(cfg)
    for lp in loops:
        union = set()
        for n in lp.body:
            union |= cfg.node(n).refs()
        assert lp.refs == union


@given(
    st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=7, unique=True),
    st.lists(
        st.tuples(st.sampled_from("abcdefg"), st.sampled_from("abcdefg")),
        max_size=10,
    ),
)
def test_cover_invariants(variables, raw_pairs):
    pairs = frozenset(
        p
        for a, b in raw_pairs
        if a in variables and b in variables and a != b
        for p in [(a, b), (b, a)]
    )
    alias = AliasStructure(tuple(variables), pairs)
    alias.validate()
    for cover in (
        Cover.singletons(alias),
        Cover.whole(alias),
        Cover.alias_classes(alias),
    ):
        covered = set()
        for el in cover.elements:
            covered |= el
        assert covered == set(variables)
        for x in variables:
            acc = cover.access_set(x)
            assert acc, "every variable's access set is nonempty"
            # the access set covers the alias class
            union = set()
            for el in acc:
                union |= el
            assert set(alias.alias_class(x)) <= union | set(
                alias.alias_class(x)
            )
            assert 1 <= cover.synch_cost(x) <= len(cover.elements)


# ---------------------------------------------------------------------------
# translation schemas: the central equivalence property
# ---------------------------------------------------------------------------


@SLOW
@given(seeds, st.booleans(), st.booleans())
def test_all_schemas_match_reference(seed, unstructured, arrays):
    prog = gen(seed, unstructured, arrays)
    ref = run_ast(prog)
    for schema in (
        "schema1",
        "schema2",
        "schema2_opt",
        "schema3",
        "schema3_opt",
        "memory_elim",
    ):
        cp = compile_program(prog, schema=schema)
        res = simulate(cp)
        assert res.memory == ref, schema


@SLOW
@given(seeds)
def test_subroutine_programs_match_reference(seed):
    """Random programs with by-reference subroutines (sometimes-repeated
    actuals induce aliasing) agree with the reference under every
    aliasing-capable schema."""
    prog = random_structured_program(seed, subroutines=True)
    ref = run_ast(prog)
    for schema in ("schema1", "schema3", "schema3_opt", "memory_elim"):
        res = simulate(compile_program(prog, schema=schema))
        assert res.memory == ref, schema


@SLOW
@given(seeds, st.booleans())
def test_transforms_match_reference(seed, unstructured):
    prog = gen(seed, unstructured, True)
    ref = run_ast(prog)
    cp = compile_program(
        prog,
        schema="memory_elim",
        parallel_reads=True,
        forward_stores=True,
        parallelize_arrays=True,
        use_istructures=True,
    )
    assert simulate(cp).memory == ref


@SLOW
@given(seeds, st.integers(min_value=1, max_value=4), seeds)
def test_confluence_under_scheduling(seed, pes, sched_seed):
    prog = gen(seed, False, False)
    ref = run_ast(prog)
    cp = compile_program(prog, schema="schema2_opt")
    res = simulate(
        cp, None, MachineConfig(num_pes=pes, seed=sched_seed)
    )
    assert res.memory == ref


@SLOW
@given(seeds, st.integers(min_value=1, max_value=30))
def test_latency_insensitivity(seed, lat):
    prog = gen(seed, True, False)
    ref = run_ast(prog)
    cp = compile_program(prog, schema="schema2")
    res = simulate(cp, None, MachineConfig(memory_latency=lat))
    assert res.memory == ref


@SLOW
@given(seeds, st.booleans())
def test_conventional_optimizations_preserve_semantics(seed, unstructured):
    prog = gen(seed, unstructured, True)
    ref = run_ast(prog)
    cp = compile_program(prog, schema="memory_elim", optimize=True)
    assert simulate(cp).memory == ref


@SLOW
@given(seeds, st.integers(min_value=1, max_value=3))
def test_loop_bound_preserves_semantics(seed, k):
    prog = gen(seed, True, False)
    ref = run_ast(prog)
    cp = compile_program(prog, schema="schema2_opt")
    res = simulate(cp, None, MachineConfig(loop_bound=k))
    assert res.memory == ref


@SLOW
@given(
    seeds,
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["round_robin", "block", "random"]),
    st.integers(min_value=0, max_value=6),
)
def test_locality_model_preserves_semantics(seed, pes, partition, net):
    prog = gen(seed, False, False)
    ref = run_ast(prog)
    cp = compile_program(prog, schema="memory_elim")
    res = simulate(
        cp,
        None,
        MachineConfig(
            num_pes=pes,
            network_latency=net,
            partition=partition,
            seed=seed,
        ),
    )
    assert res.memory == ref


@SLOW
@given(seeds, st.booleans())
def test_optimize_composes_with_transforms(seed, unstructured):
    prog = gen(seed, unstructured, True)
    ref = run_ast(prog)
    cp = compile_program(
        prog,
        schema="memory_elim",
        optimize=True,
        parallel_reads=True,
        forward_stores=True,
        parallelize_arrays=True,
        use_istructures=True,
    )
    assert simulate(cp).memory == ref


@SLOW
@given(seeds, st.booleans(), compile_options, machine_configs())
def test_equivalence_across_joint_config_space(seed, unstructured, opts, config):
    """The central equivalence holds at random points of the
    CompileOptions × MachineConfig cross product, not just at the
    defaults: any schema + any transform stack + any machine shape
    (PE count, latencies, k-bound, locality, scheduler mode) reproduces
    the reference interpreter."""
    prog = gen(seed, unstructured, True)
    ref = run_ast(prog)
    cp = compile_program(prog, options=opts)
    res = simulate(cp, None, config)
    assert res.memory == ref, (opts, config)


@pytest.mark.slow
@SLOW
@given(seeds, compile_options, machine_configs())
def test_engine_cache_equivalence_across_joint_config_space(seed, opts, config):
    """Differential fuzzing of the engine layer: a cache-served graph
    simulated under a random machine config matches both the reference
    interpreter and a fresh compile's per-cycle run."""
    prog = gen(seed, False, False)
    source = pretty(prog)
    ref = run_ast(prog)
    cache = GraphCache()
    cp = cache.get_or_compile(source, opts)
    cp2, hit = cache.lookup(source, opts)
    assert hit and cp2 is cp
    res = simulate(cp, None, config)
    assert res.memory == ref, (opts, config)
    # step-mode twin of the same machine on a fresh compile: the cache and
    # the fast path must not change work, makespan, or final memory
    import dataclasses

    step = simulate(
        compile_program(source, options=opts),
        None,
        dataclasses.replace(config, sim_mode="step"),
    )
    assert res.memory == step.memory
    assert res.metrics.operations == step.metrics.operations
    assert res.metrics.cycles == step.metrics.cycles


@SLOW
@given(seeds)
def test_no_clashes_on_valid_graphs(seed):
    """Loop-controlled graphs are valid ETS computations: no same-tag
    clashes ever (on_clash='raise' would abort the run)."""
    prog = gen(seed, True, False)
    cp = compile_program(prog, schema="schema2_opt")
    res = simulate(cp)
    assert res.metrics.clashes == 0
