"""Exhaustive tests for the shared operator semantics — the single module
both the interpreters and the machine evaluate through."""

import pytest

from hypothesis import given, strategies as st

from repro.semantics import apply_binop, apply_unop, truthy

ints = st.integers(min_value=-10**6, max_value=10**6)


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        ("+", 2, 3, 5),
        ("-", 2, 3, -1),
        ("*", 4, -3, -12),
        ("/", 7, 2, 3),
        ("/", -7, 2, -4),  # floor division
        ("/", 7, -2, -4),
        ("/", 5, 0, 0),  # total
        ("%", 7, 3, 1),
        ("%", -7, 3, 2),  # sign follows divisor (Python floor-mod)
        ("%", 5, 0, 0),  # total
        ("==", 3, 3, 1),
        ("==", 3, 4, 0),
        ("!=", 3, 4, 1),
        ("<", 1, 2, 1),
        ("<=", 2, 2, 1),
        (">", 2, 1, 1),
        (">=", 1, 2, 0),
        ("and", 5, 3, 1),
        ("and", 5, 0, 0),
        ("or", 0, 0, 0),
        ("or", 0, -1, 1),
    ],
)
def test_binop_table(op, a, b, expected):
    assert apply_binop(op, a, b) == expected


@pytest.mark.parametrize(
    "op,a,expected",
    [("-", 5, -5), ("-", -5, 5), ("not", 0, 1), ("not", 7, 0)],
)
def test_unop_table(op, a, expected):
    assert apply_unop(op, a) == expected


def test_unknown_operators_rejected():
    with pytest.raises(ValueError):
        apply_binop("**", 1, 2)
    with pytest.raises(ValueError):
        apply_unop("~", 1)


def test_truthy():
    assert truthy(1) and truthy(-1) and not truthy(0)


@given(ints, ints)
def test_division_identity(a, b):
    """a == (a / b) * b + a % b whenever b != 0 (floor semantics)."""
    if b != 0:
        assert apply_binop("/", a, b) * b + apply_binop("%", a, b) == a


@given(ints, ints)
def test_comparisons_are_boolean(a, b):
    for op in ("==", "!=", "<", "<=", ">", ">=", "and", "or"):
        assert apply_binop(op, a, b) in (0, 1)


@given(ints, ints)
def test_comparison_trichotomy(a, b):
    assert (
        apply_binop("<", a, b)
        + apply_binop("==", a, b)
        + apply_binop(">", a, b)
        == 1
    )


@given(ints)
def test_double_negation(a):
    assert apply_unop("-", apply_unop("-", a)) == a
    assert apply_unop("not", apply_unop("not", a)) == truthy(a)


@given(ints, ints)
def test_binop_funcs_agree_with_apply_binop(a, b):
    """The resolved-callable table the packed interpreter binds at
    lowering time must agree with the dispatching reference everywhere,
    including the total-division and truthiness edge cases."""
    from repro.semantics import BINOP_FUNCS, UNOP_FUNCS

    assert set(BINOP_FUNCS) == {
        "+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
        "and", "or",
    }
    assert set(UNOP_FUNCS) == {"-", "not"}
    for op, fn in BINOP_FUNCS.items():
        assert fn(a, b) == apply_binop(op, a, b), op
    for op, fn in UNOP_FUNCS.items():
        assert fn(a) == apply_unop(op, a), op
