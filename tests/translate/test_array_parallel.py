"""Tests for Section 6.3: array store pipelining (Figure 14) and write-once
arrays on I-structure memory."""

from repro.bench.programs import ARRAY_LOOP, CORPUS
from repro.dfg import OpKind
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

SRC = ARRAY_LOOP.source

BIG_LOOP = """
array a[64];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < 50 then goto s;
"""


def test_paper_loop_qualifies():
    cp = compile_program(SRC, schema="memory_elim", parallelize_arrays=True)
    assert cp.array_report is not None
    assert cp.array_report.pipelined == ((0, "x"),)
    assert cp.array_report.skipped == ()


def test_pipelined_graph_structure():
    """Figure 14(c): a duplicated token, a per-iteration synch with the
    store, a completion switch, and an exit synch."""
    cp = compile_program(SRC, schema="memory_elim", parallelize_arrays=True)
    tags = [n.tag for n in cp.graph.nodes.values()]
    assert any(t.startswith("fig14-done") for t in tags)
    assert any(t.startswith("fig14-switch") for t in tags)
    assert any(t.startswith("fig14-exit") for t in tags)
    les = cp.graph.of_kind(OpKind.LOOP_ENTRY)
    assert any("~done:x" in le.channel_labels for le in les)


def test_semantics_preserved():
    ref = run_ast(parse(SRC))
    for schema in ("schema2_opt", "memory_elim"):
        cp = compile_program(SRC, schema=schema, parallelize_arrays=True)
        assert simulate(cp).memory == ref, schema


def test_critical_path_O_n_plus_L():
    """Figure 14's payoff: n stores at latency L cost ~n*L serialized but
    ~n + L pipelined (measured under memory elimination, where the store
    chain is the loop's critical path)."""
    L = 40
    config = MachineConfig(memory_latency=L)
    base = simulate(
        compile_program(BIG_LOOP, schema="memory_elim"), config=config
    )
    fast = simulate(
        compile_program(
            BIG_LOOP, schema="memory_elim", parallelize_arrays=True
        ),
        config=config,
    )
    assert base.memory == fast.memory
    n = 50
    assert base.metrics.cycles > n * L * 0.8  # serialized: ~n*L
    assert fast.metrics.cycles < n * 8 + 3 * L  # pipelined: ~n + L


def test_stores_overlap_in_time():
    cp = compile_program(
        BIG_LOOP, schema="memory_elim", parallelize_arrays=True
    )
    res = simulate(cp, {}, MachineConfig(memory_latency=40, trace=True))
    store_cycles = sorted(
        cyc for cyc, _, desc, _ in res.trace if desc == "astore a"
    )
    # consecutive stores issue within a few cycles of each other — far less
    # than the 40-cycle store latency
    gaps = [b - a for a, b in zip(store_cycles, store_cycles[1:])]
    assert max(gaps) < 10


def test_loop_with_array_read_skipped():
    src = """
    array a[16];
    i := 0;
    s: i := i + 1;
       a[i] := a[i - 1] + 1;
       if i < 10 then goto s;
    """
    cp = compile_program(src, schema="memory_elim", parallelize_arrays=True)
    assert cp.array_report.pipelined == ()
    (skip,) = cp.array_report.skipped
    assert skip[1] == "a" and skip[2] == "not iteration independent"
    assert simulate(cp).memory == run_ast(parse(src))


def test_constant_subscript_skipped():
    src = """
    array a[8];
    i := 0;
    s: i := i + 1;
       a[3] := i;
       if i < 5 then goto s;
    """
    cp = compile_program(src, schema="memory_elim", parallelize_arrays=True)
    assert cp.array_report.pipelined == ()
    assert simulate(cp).memory == run_ast(parse(src))


# -- I-structures -----------------------------------------------------------


def test_write_once_array_promoted():
    cp = compile_program(SRC, schema="memory_elim", use_istructures=True)
    assert cp.istructure_arrays == ["x"]
    assert cp.graph.count(OpKind.ISTORE) == 1
    assert cp.graph.count(OpKind.ASTORE) == 0


def test_istructure_semantics_preserved():
    ref = run_ast(parse(SRC))
    cp = compile_program(SRC, schema="memory_elim", use_istructures=True)
    assert simulate(cp).memory == ref


def test_istructure_reader_defers_until_write():
    """A read of x[10] placed after the loop gets its value even though the
    ILOAD can fire before the writing iteration completes."""
    src = SRC + "q := x[10];"
    ref = run_ast(parse(src))
    cp = compile_program(src, schema="memory_elim", use_istructures=True)
    assert cp.istructure_arrays == ["x"]
    assert cp.graph.count(OpKind.ILOAD) == 1
    res = simulate(cp, {}, MachineConfig(memory_latency=25))
    assert res.memory == ref
    assert res.memory["q"] == 1


def test_non_write_once_array_not_promoted():
    src = """
    array a[8];
    a[0] := 1;
    a[0] := 2;
    """
    cp = compile_program(src, schema="schema2_opt", use_istructures=True)
    assert cp.istructure_arrays == []
    assert simulate(cp).memory == run_ast(parse(src))


def test_istructures_with_fig14_compose():
    src = BIG_LOOP + "q := a[25];"
    ref = run_ast(parse(src))
    cp = compile_program(
        src,
        schema="memory_elim",
        parallelize_arrays=True,
        use_istructures=True,
    )
    res = simulate(cp, {}, MachineConfig(memory_latency=30))
    assert res.memory == ref


def test_corpus_array_programs_with_both_transforms():
    for wl in CORPUS:
        if not wl.uses_arrays():
            continue
        inputs = wl.inputs[0]
        ref = run_ast(parse(wl.source), inputs)
        cp = compile_program(
            wl.source,
            schema="memory_elim",
            parallelize_arrays=True,
            use_istructures=True,
        )
        assert simulate(cp, inputs).memory == ref, wl.name
