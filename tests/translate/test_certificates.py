"""Certificate property suite (Hypothesis): for random generated programs
across every legal schema, (a) every pass certificate verifies at
``full``, and (b) a mutated witness is rejected — the verifiers must not
be vacuous."""

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.translate import (
    VERIFIERS,
    CertificateError,
    CompileOptions,
    compile_program,
)
from repro.validate import GenKnobs, generate, legal_schemas

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=150)


@given(seed=seeds)
@SETTINGS
def test_every_pass_certificate_verifies_at_full(seed):
    gp = generate(seed, GenKnobs())
    for schema in legal_schemas(gp.source):
        cp = compile_program(
            gp.source,
            options=CompileOptions(schema=schema, verify_passes="full"),
        )
        assert cp.pass_log, schema
        assert all(c.verified == "full" for c in cp.pass_log)


@given(seed=seeds)
@SETTINGS
def test_certificates_verify_with_rewrites_enabled(seed):
    gp = generate(seed, GenKnobs(array_ops=0.8))
    schema = legal_schemas(gp.source)[-1]
    cp = compile_program(
        gp.source,
        options=CompileOptions(
            schema=schema,
            verify_passes="full",
            redundant_elim=True,
            parallelize_arrays=True,
            use_istructures=True,
            forward_stores=True,
            parallel_reads=True,
        ),
    )
    names = [c.pass_name for c in cp.pass_log]
    assert "redundant_elim" in names and "parallel_reads" in names


def _mutate(cert):
    """One curated bit-flip per pass kind; returns the doctored witness
    (None when the witness has nothing mutable for this program)."""
    w = copy.deepcopy(cert.witness)
    name = cert.pass_name
    if name == "intervals":
        if w["loops"]:
            del w["loops"][0]
        else:
            w["split_applied"] = not w["split_applied"]
        return w
    if name == "switch_placement":
        for sname, forks in w["placement"].items():
            if forks:
                w["placement"][sname] = forks[1:]  # drop a needed site
                return w
        w["placement"]["___bogus"] = []  # phantom stream
        return w
    if name == "source_vectors":
        for per_node in w["sv"].values():
            for nid, srcs in per_node.items():
                if srcs:
                    # flip the branch-direction bit of one source
                    m, d = srcs[0]
                    per_node[nid] = [[m, not d]] + srcs[1:]
                    return w
        return None
    if name == "construct":
        w["nodes"] += 1
        return w
    if name == "redundant_elim":
        w["switches_removed"] = list(w["switches_removed"]) + [999999]
        return w
    if name == "array_parallel":
        w["pipelined"] = list(w["pipelined"]) + [[999, "___bogus"]]
        return w
    if name == "istructures":
        w["promoted"] = list(w["promoted"]) + ["___bogus"]
        return w
    if name == "forward_stores":
        w["loads_removed"] = list(w["loads_removed"]) + [999999]
        return w
    if name == "parallel_reads":
        w["chains"] = list(w["chains"]) + [
            {"loads": [1, 2], "synch": 999999}
        ]
        return w
    raise AssertionError(f"unknown pass {name}")


@given(seed=seeds)
@SETTINGS
def test_mutated_witness_is_rejected(seed):
    gp = generate(seed, GenKnobs())
    schema = legal_schemas(gp.source)[-1]
    cp = compile_program(
        gp.source, options=CompileOptions(schema=schema)
    )
    for cert in cp.pass_log:
        # the honest witness verifies...
        VERIFIERS[cert.pass_name](cp.pass_ctx, cert.witness, "full")
        mutated = _mutate(cert)
        if mutated is None:
            continue
        assert mutated != cert.witness, cert.pass_name
        # ...the doctored one does not
        with pytest.raises(CertificateError) as ei:
            VERIFIERS[cert.pass_name](cp.pass_ctx, mutated, "full")
        assert ei.value.pass_name == cert.pass_name


def test_mutated_rewrite_witnesses_are_rejected():
    """The §6 rewrite passes' witnesses, doctored one at a time."""
    src = (
        "array a[8];\n"
        "i := 0;\n"
        "top: a[i] := i * 2;\n"
        "i := i + 1;\n"
        "if i < 8 then goto top;\n"
        "s := a[3] + a[4];\n"
    )
    cp = compile_program(
        src,
        options=CompileOptions(
            schema="schema2_opt",
            redundant_elim=True,
            parallelize_arrays=True,
            use_istructures=True,
            forward_stores=True,
            parallel_reads=True,
        ),
    )
    rewrites = [
        c for c in cp.pass_log
        if c.pass_name in ("redundant_elim", "array_parallel",
                           "istructures", "forward_stores",
                           "parallel_reads")
    ]
    assert len(rewrites) == 5
    for cert in rewrites:
        mutated = _mutate(cert)
        with pytest.raises(CertificateError):
            VERIFIERS[cert.pass_name](cp.pass_ctx, mutated, "full")
