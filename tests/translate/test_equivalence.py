"""Cross-schema equivalence over the whole corpus: every schema (and every
transform combination) must produce the reference interpreter's final
memory.  This is the central correctness claim of the paper's translation.

Compilation goes through the engine's graph cache (each (program, schema)
pair compiles once for all its input sets), and the corpus sweep itself
also runs through the engine's ``run_batch`` pool.
"""

import pytest

from repro.bench.harness import corpus_jobs, schemas_for
from repro.bench.programs import CORPUS
from repro.engine import GraphCache, run_batch
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

#: shared across this module's parametrized cases: one compile per
#: (source, options) pair instead of one per (source, options, input)
_CACHE = GraphCache()

ALL_SCHEMAS = (
    "schema1",
    "schema2",
    "schema2_opt",
    "schema3",
    "schema3_opt",
    "memory_elim",
)


CASES = [
    (wl, schema, inputs)
    for wl in CORPUS
    for schema in schemas_for(wl)
    for inputs in wl.inputs
]


@pytest.mark.parametrize(
    "wl,schema,inputs",
    CASES,
    ids=[f"{w.name}-{s}-{i}" for w, s, i in [(w, s, tuple(sorted(i.items()))) for w, s, i in CASES]],
)
def test_schema_matches_reference(wl, schema, inputs):
    ref = run_ast(parse(wl.source), inputs)
    cp = _CACHE.get_or_compile(wl.source, schema=schema)
    res = simulate(cp, inputs)
    assert res.memory == ref


def test_batch_sweep_matches_reference():
    """The engine's pooled batch sweep reproduces the reference
    interpreter on the whole corpus, with results in job order."""
    jobs = corpus_jobs()
    results = run_batch(jobs, pool_size=2)
    assert [r.name for r in results] == [j.name for j in jobs]
    for job, br in zip(jobs, results):
        ref = run_ast(parse(job.source), job.inputs)
        assert br.result.memory == ref, br.name


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_transform_combinations_match_reference(wl):
    """Section 6 transforms preserve semantics on every corpus program."""
    inputs = wl.inputs[0]
    ref = run_ast(parse(wl.source), inputs)
    schema = "memory_elim"
    for kwargs in (
        dict(parallel_reads=True),
        dict(forward_stores=True),
        dict(parallelize_arrays=True),
        dict(use_istructures=True),
        dict(
            parallel_reads=True,
            forward_stores=True,
            parallelize_arrays=True,
            use_istructures=True,
        ),
    ):
        cp = compile_program(wl.source, schema=schema, **kwargs)
        res = simulate(cp, inputs)
        assert res.memory == ref, (wl.name, kwargs)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_schema1_transforms_match_reference(wl):
    inputs = wl.inputs[0]
    ref = run_ast(parse(wl.source), inputs)
    cp = compile_program(
        wl.source, schema="schema1", parallel_reads=True, forward_stores=True
    )
    res = simulate(cp, inputs)
    assert res.memory == ref


@pytest.mark.parametrize("seed", range(5))
def test_scheduling_seed_does_not_change_results(seed):
    """Confluence: with finite PEs and randomized firing order, valid graphs
    give identical final memory."""
    wl = next(w for w in CORPUS if w.name == "gcd")
    inputs = wl.inputs[0]
    ref = run_ast(parse(wl.source), inputs)
    cp = compile_program(wl.source, schema="schema2_opt")
    res = simulate(
        cp, inputs, MachineConfig(num_pes=2, seed=seed)
    )
    assert res.memory == ref


@pytest.mark.parametrize("pes", [1, 2, 4, None])
def test_pe_count_does_not_change_results(pes):
    wl = next(w for w in CORPUS if w.name == "matmul")
    ref = run_ast(parse(wl.source))
    cp = compile_program(wl.source, schema="memory_elim")
    res = simulate(cp, {}, MachineConfig(num_pes=pes))
    assert res.memory == ref


def test_memory_latency_does_not_change_results():
    wl = next(w for w in CORPUS if w.name == "bubble_sort")
    ref = run_ast(parse(wl.source))
    for lat in (1, 5, 17):
        cp = compile_program(wl.source, schema="schema2_opt")
        res = simulate(cp, {}, MachineConfig(memory_latency=lat))
        assert res.memory == ref
