"""Fig 10 corrigendum regression test (DESIGN.md §5).

The switch-placement algorithm as *printed* in Figure 10 marks a fork
``F`` and enqueues it but consults ``WL(F)`` only when deciding whether to
enqueue — so on graphs where control dependences chain through
already-processed forks (irreducible regions exercise exactly this,
before and after the paper's code-copying transform) the printed variant
can stop early.  We implement the standard fixed point instead; this
suite pins that choice by comparing the fixed-point result against the
brute-force Definition 2/3 path-search oracles on an irreducible-CFG
corpus, both on the raw graphs and after ``split_irreducible``'s code
copying.
"""

import pytest

from repro.analysis.control_dep import (
    between_brute_force,
    cd_plus,
    needs_switch_brute_force,
)
from repro.analysis.dominance import postdominator_tree
from repro.cfg import CFG, NodeKind, build_cfg, decompose, find_loops
from repro.cfg.intervals import IrreducibleCFGError, split_irreducible
from repro.lang import parse
from repro.translate import streams_for, switch_placement

#: goto programs whose raw CFGs contain multi-entry (irreducible) cyclic
#: regions: every SCC below is enterable at two points
IRREDUCIBLE_SOURCES = {
    # classic two-entry loop: fallthrough enters at l1, the branch at l2
    "two_entry": """
        if p == 0 then goto l2;
        l1: x := x + 1;
        l2: x := x + 2;
        if x < 10 then goto l1;
    """,
    # a cycle entered both at its backedge target and at its midpoint
    "enter_middle": """
        if w == 0 then goto top;
        mid: x := x + 1;
        if x < 25 then goto top;
        goto done;
        top: x := x + 10;
           y := y + 1;
        goto mid;
        done: z := x + y;
    """,
    # two mutually-jumping regions, each entered from outside the cycle
    "mutual": """
        if p == 0 then goto b;
        a: x := x + 1;
           if x % 3 == 0 then goto b;
           goto done;
        b: x := x + 2;
           if x < 20 then goto a;
        done: r := x;
    """,
    # irreducible region nested behind a reducible outer loop
    "nested": """
        outer: t := t + 1;
        if t % 2 == 0 then goto l2;
        l1: x := x + 1;
        l2: x := x + 3;
        if x < 8 then goto l1;
        if t < 5 then goto outer;
    """,
}


def _hand_built_irreducible() -> CFG:
    """Two mutually-jumping joins both entered from outside (the
    tests/cfg interval suite's graph, rebuilt here: the source language
    cannot express it without an extra fork)."""
    from repro.lang.ast_nodes import BinOp, IntLit, Var

    cfg = CFG()
    s = cfg.add_node(NodeKind.START)
    e = cfg.add_node(NodeKind.END)
    p = BinOp("<", Var("x"), IntLit(1))
    f1 = cfg.add_node(NodeKind.FORK, pred=p)
    j1 = cfg.add_node(NodeKind.JOIN, label="j1")
    j2 = cfg.add_node(NodeKind.JOIN, label="j2")
    f2 = cfg.add_node(NodeKind.FORK, pred=p)
    f3 = cfg.add_node(NodeKind.FORK, pred=p)
    cfg.add_edge(s.id, f1.id, True)
    cfg.add_edge(s.id, e.id, False)
    cfg.add_edge(f1.id, j1.id, True)
    cfg.add_edge(f1.id, j2.id, False)
    cfg.add_edge(j1.id, f2.id, None)
    cfg.add_edge(f2.id, j2.id, True)
    cfg.add_edge(f2.id, e.id, False)
    cfg.add_edge(j2.id, f3.id, None)
    cfg.add_edge(f3.id, j1.id, True)
    cfg.add_edge(f3.id, e.id, False)
    cfg.validate()
    return cfg


def _raw_cfgs():
    out = [(name, build_cfg(parse(src))) for name, src in
           sorted(IRREDUCIBLE_SOURCES.items())]
    out.append(("hand_built", _hand_built_irreducible()))
    return out


@pytest.mark.parametrize("name,cfg", _raw_cfgs(), ids=lambda v: v if isinstance(v, str) else "")
def test_corpus_is_actually_irreducible(name, cfg):
    with pytest.raises(IrreducibleCFGError):
        find_loops(cfg)


@pytest.mark.parametrize("name,cfg", _raw_cfgs(), ids=lambda v: v if isinstance(v, str) else "")
def test_cd_plus_fixed_point_matches_def2_brute_force(name, cfg):
    """Definition 2 (the *between* relation): the fixed point agrees with
    path search for every (fork candidate, node) pair — on the raw
    irreducible graph and on its code-copied reducible form."""
    for tag, g in (("raw", cfg), ("split", split_irreducible(cfg))):
        pdom = postdominator_tree(g)
        plus = cd_plus(g)
        for n in sorted(g.nodes):
            for f in sorted(g.nodes):
                assert (f in plus[n]) == between_brute_force(g, f, n, pdom), (
                    name, tag, f, n,
                )


@pytest.mark.parametrize(
    "name,src", sorted(IRREDUCIBLE_SOURCES.items()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_switch_placement_matches_def3_brute_force(name, src):
    """Definition 3 (which forks need a switch per stream): the worklist
    fixed point agrees with the brute-force oracle on the loop-decomposed
    (code-copied) graphs the optimized construction actually consumes."""
    prog = parse(src)
    cfg, _ = decompose(build_cfg(prog))
    streams = streams_for(prog, "schema2")
    placement = switch_placement(cfg, streams)
    pdom = postdominator_tree(cfg)
    for s in streams:
        for f in (n for n in cfg.nodes if cfg.is_fork(n)):
            oracle = any(
                needs_switch_brute_force(cfg, f, v, pdom) for v in s.governs
            )
            assert (f in placement[s.name]) == oracle, (name, s.name, f)


@pytest.mark.parametrize(
    "name,src", sorted(IRREDUCIBLE_SOURCES.items()), ids=lambda v: v if isinstance(v, str) else ""
)
@pytest.mark.parametrize("schema", ["schema2_opt", "memory_elim"])
def test_irreducible_programs_still_execute_correctly(name, src, schema):
    """End-to-end guard: the corrigendum's fixed point wires graphs that
    actually run to the reference interpreter's answer."""
    from repro.interp import run_ast
    from repro.translate import compile_program, simulate

    inputs = {"p": 0}
    ref = run_ast(parse(src), inputs)
    res = simulate(compile_program(src, schema=schema), inputs)
    assert res.memory == ref, (name, schema)
