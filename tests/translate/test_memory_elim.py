"""Tests for memory elimination (Section 6.1): values on tokens, merges as
implicit phi-functions, SSA connection."""

from repro.analysis import construct_ssa
from repro.analysis.ssa import prune_dead_phis
from repro.bench.programs import CORPUS, RUNNING_EXAMPLE
from repro.cfg import build_cfg
from repro.dfg import OpKind, graph_stats
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_no_memory_ops_for_unaliased_scalars():
    """"In the absence of aliasing, memory operations on scalars can be
    eliminated completely and all values can be carried on tokens"."""
    cp = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    assert graph_stats(cp.graph).memory_ops == 0


def test_all_streams_carry_values():
    cp = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    assert all(s.carries_value for s in cp.streams)
    start = cp.graph.node(cp.graph.start)
    assert all(seed.kind == "value" for seed in start.seeds)


def test_final_values_arrive_on_tokens():
    cp = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    res = simulate(cp)
    assert res.end_values == {"x": 5, "y": 5}


def test_aliased_scalars_keep_memory():
    src = "alias (p, q); p := 1; r := q + p;"
    cp = compile_program(src, schema="memory_elim")
    kinds = {s.name: s.carries_value for s in cp.streams}
    assert kinds["p"] is False and kinds["q"] is False
    assert kinds["r"] is True
    st = graph_stats(cp.graph)
    assert st.memory_ops > 0


def test_arrays_keep_memory():
    src = "array a[4]; a[0] := 1; x := a[0];"
    cp = compile_program(src, schema="memory_elim")
    a_stream = next(s for s in cp.streams if s.name == "a")
    assert not a_stream.carries_value
    st = graph_stats(cp.graph)
    assert st.memory_ops == 2  # the array store and load only


def test_every_pruned_ssa_phi_has_a_value_merge():
    """The paper: joining of values "is implicit in the model" — dataflow
    merges play the role of SSA phi-functions.  Every pruned-SSA phi at a
    join corresponds to a value merge for that variable at that join.  (The
    converse does not hold exactly: a variable merely *read* inside a
    conditional has its token switched and re-merged even though its value
    is unchanged, so merges >= phis.)"""
    src = """
    if c == 0 then { y := 1; } else { y := 2; }
    if d == 0 then { z := y; } else { z := 3; }
    r := y + z;
    """
    cp = compile_program(src, schema="memory_elim")
    merge_tags = {
        n.tag for n in cp.graph.of_kind(OpKind.MERGE)
    }
    ssa = prune_dead_phis(construct_ssa(build_cfg(parse(src))))
    phi_sites = [
        (nid, p.var) for nid, phis in ssa.phis.items() for p in phis
    ]
    assert len(phi_sites) == 2  # y at the first join, z at the second
    for nid, var in phi_sites:
        assert f"cfg{nid}:{var}" in merge_tags, (nid, var)
    assert cp.graph.count(OpKind.MERGE) >= len(phi_sites)


def test_memory_elim_dominates_schema2_parallelism():
    """Dropping loads/stores shortens the critical path on every corpus
    program."""
    for wl in CORPUS:
        inputs = wl.inputs[0]
        if wl.has_aliasing():
            continue
        s2 = simulate(
            compile_program(wl.source, schema="schema2_opt"), inputs
        )
        me = simulate(
            compile_program(wl.source, schema="memory_elim"), inputs
        )
        assert me.memory == s2.memory, wl.name
        assert me.metrics.cycles <= s2.metrics.cycles, wl.name


def test_memory_latency_insensitive_for_scalar_programs():
    """With no memory operations left, memory latency is irrelevant."""
    cp1 = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    cp2 = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    r1 = simulate(cp1, {}, MachineConfig(memory_latency=1))
    r2 = simulate(cp2, {}, MachineConfig(memory_latency=50))
    assert r1.metrics.cycles == r2.metrics.cycles


def test_loop_carried_value_token():
    """x's value circulates through LOOP_ENTRY channels as a value token."""
    cp = compile_program(RUNNING_EXAMPLE.source, schema="memory_elim")
    les = cp.graph.of_kind(OpKind.LOOP_ENTRY)
    assert len(les) == 1
    assert set(les[0].channel_labels) == {"x", "y"}
    # arcs into the loop entry are value arcs
    for p in range(les[0].nchannels * 2):
        arc = cp.graph.producer(les[0].id, p)
        assert arc is not None and not arc.is_access


def test_uninitialized_variable_reads_input_value():
    cp = compile_program("y := x + 1;", schema="memory_elim")
    res = simulate(cp, {"x": 41})
    assert res.memory["y"] == 42
