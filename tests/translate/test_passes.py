"""Pass-manager pipeline: certificate logs, verify levels, and the
mutation-detection suite (test-only bug hooks must be blamed on the
correct pass, not a downstream one)."""

import json

import pytest

import repro.cfg.intervals as intervals
import repro.translate.passes as passes
from repro.obs.trace import activate, deactivate, new_trace_id, tracer
from repro.translate import (
    CertificateError,
    CompileOptions,
    compile_program,
    verify_pass_log,
)

#: a program whose split_irreducible run exercises the PR-1 SCC-exit bug
#: shape (an edge leaving the region toward a non-JOIN successor)
IRREDUCIBLE_SRC = """
if w == 0 then goto top;
mid: x := x + 1;
if x < 25 then goto top;
goto done;
top: x := x + 10;
   y := y + 1;
goto mid;
done: z := x + y;
"""

BRANCH_SRC = "if p == 0 then goto sk;\nx := x + 1;\nsk: y := x;\n"
LOOP_SRC = "i := 0;\ntop: i := i + 1;\nif i < 5 then goto top;\nz := i;\n"


class TestPassLog:
    def test_optimized_schema_pass_order(self):
        cp = compile_program(LOOP_SRC, schema="schema2_opt")
        names = [c.pass_name for c in cp.pass_log]
        assert names == [
            "intervals", "switch_placement", "source_vectors", "construct",
        ]

    def test_allpaths_schema_pass_order(self):
        cp = compile_program(LOOP_SRC, schema="schema2")
        assert [c.pass_name for c in cp.pass_log] == [
            "intervals", "construct",
        ]

    def test_schema1_skips_intervals(self):
        cp = compile_program(LOOP_SRC, schema="schema1")
        assert [c.pass_name for c in cp.pass_log] == ["construct"]

    def test_optional_rewrites_appear_in_order(self):
        cp = compile_program(
            LOOP_SRC,
            options=CompileOptions(
                schema="schema2_opt",
                redundant_elim=True,
                parallelize_arrays=True,
                use_istructures=True,
                forward_stores=True,
                parallel_reads=True,
            ),
        )
        assert [c.pass_name for c in cp.pass_log] == [
            "intervals", "switch_placement", "source_vectors", "construct",
            "redundant_elim", "array_parallel", "istructures",
            "forward_stores", "parallel_reads",
        ]

    def test_witnesses_are_json_serializable(self):
        cp = compile_program(
            LOOP_SRC,
            options=CompileOptions(schema="schema2_opt", redundant_elim=True),
        )
        for cert in cp.pass_log:
            json.dumps(cert.witness)
            json.dumps(cert.metrics)

    def test_verified_level_recorded(self):
        cp = compile_program(
            LOOP_SRC,
            options=CompileOptions(schema="schema2_opt", verify_passes="cheap"),
        )
        assert all(c.verified == "cheap" for c in cp.pass_log)
        cp = compile_program(LOOP_SRC, schema="schema2_opt")
        assert all(c.verified == "off" for c in cp.pass_log)

    def test_verify_pass_log_rechecks(self):
        cp = compile_program(
            LOOP_SRC,
            options=CompileOptions(schema="schema2_opt", verify_passes="off"),
        )
        verify_pass_log(cp, level="full")

    def test_verify_spans_emitted(self):
        tid = new_trace_id()
        token = activate(tid)
        try:
            compile_program(
                LOOP_SRC,
                options=CompileOptions(
                    schema="schema2_opt", verify_passes="cheap"
                ),
            )
        finally:
            deactivate(token)
        names = {s.name for s in tracer.take(tid)}
        assert "compile.intervals" in names
        assert "compile.switch_placement" in names
        assert "compile.source_vectors" in names
        assert "compile.translate" in names
        assert "compile.verify.intervals" in names
        assert "compile.verify.construct" in names

    def test_bad_verify_level_rejected(self):
        with pytest.raises(ValueError, match="verify_passes"):
            CompileOptions(verify_passes="paranoid")

    def test_fingerprint_covers_new_knobs(self):
        a = CompileOptions().fingerprint()
        b = CompileOptions(verify_passes="full").fingerprint()
        c = CompileOptions(redundant_elim=True).fingerprint()
        assert len({a, b, c}) == 3


class TestMutationDetection:
    """The two known-bug shapes behind test-only hooks must be blamed on
    the pass that introduced them, never on a downstream pass."""

    def test_scc_exit_bug_blamed_on_intervals(self, monkeypatch):
        monkeypatch.setattr(intervals, "_TEST_SCC_EXIT_BUG", True)
        for level in ("cheap", "full"):
            with pytest.raises(CertificateError) as ei:
                compile_program(
                    IRREDUCIBLE_SRC,
                    options=CompileOptions(
                        schema="schema2_opt", verify_passes=level
                    ),
                )
            assert ei.value.pass_name == "intervals"

    def test_scc_exit_bug_escapes_unverified(self, monkeypatch):
        monkeypatch.setattr(intervals, "_TEST_SCC_EXIT_BUG", True)
        with pytest.raises(Exception) as ei:
            compile_program(IRREDUCIBLE_SRC, schema="schema2_opt")
        assert not isinstance(ei.value, CertificateError)

    def test_misplaced_switch_blamed_on_placement(self, monkeypatch):
        monkeypatch.setattr(passes, "_TEST_MISPLACE_SWITCH", True)
        for level in ("cheap", "full"):
            with pytest.raises(CertificateError) as ei:
                compile_program(
                    BRANCH_SRC,
                    options=CompileOptions(
                        schema="schema2_opt", verify_passes=level
                    ),
                )
            # blame must land on switch_placement, not source_vectors
            # or construct (which crash on the broken placement later)
            assert ei.value.pass_name == "switch_placement"

    def test_misplaced_switch_escapes_unverified(self, monkeypatch):
        monkeypatch.setattr(passes, "_TEST_MISPLACE_SWITCH", True)
        with pytest.raises(Exception) as ei:
            compile_program(BRANCH_SRC, schema="schema2_opt")
        assert not isinstance(ei.value, CertificateError)

    def test_hooks_off_by_default(self):
        assert intervals._TEST_SCC_EXIT_BUG is False
        assert passes._TEST_MISPLACE_SWITCH is False
        compile_program(
            IRREDUCIBLE_SRC,
            options=CompileOptions(schema="schema2_opt", verify_passes="full"),
        )
        compile_program(
            BRANCH_SRC,
            options=CompileOptions(schema="schema2_opt", verify_passes="full"),
        )
