"""Tests for the iterative redundant-switch-elimination ablation (the
'earlier version of this paper' algorithm mentioned in Section 4)."""

from repro.bench.programs import CORPUS, FIGURE_9
from repro.dfg import OpKind, graph_stats
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate
from repro.translate.redundant_elim import (
    eliminate_redundant_switches,
    sweep_dead_value_nodes,
)


def test_figure9_switch_removed():
    cp = compile_program(FIGURE_9.source, schema="schema2")
    before = cp.graph.count(OpKind.SWITCH)
    removed = eliminate_redundant_switches(cp.graph)
    assert before == 3
    # access_w's switch collapses (both outputs feed the join merge).
    # access_y's is genuinely needed.  access_x's outputs ALSO trigger the
    # branch constants in this wiring, so the local pattern cannot remove
    # it — one of the reasons the paper prefers the direct construction,
    # which triggers branch constants from the branch's own switched
    # stream and routes x around the conditional entirely.
    assert removed == 1
    assert cp.graph.count(OpKind.SWITCH) == 2


def test_figure9_still_correct_after_elimination():
    for w in (0, 5):
        cp = compile_program(FIGURE_9.source, schema="schema2")
        eliminate_redundant_switches(cp.graph)
        sweep_dead_value_nodes(cp.graph)
        res = simulate(cp, {"w": w})
        assert res.memory == run_ast(parse(FIGURE_9.source), {"w": w})


def test_cascade_through_nested_conditionals():
    """The paper's example: once the inner switch for access_x goes, the
    outer becomes redundant and goes too."""
    src = """
    x := x + 1;
    if a == 0 then {
      if b == 0 then { y := 1; }
      z := 2;
    }
    x := 0;
    """
    cp = compile_program(src, schema="schema2")
    # x is switched at both forks in the base schema
    removed = eliminate_redundant_switches(cp.graph)
    assert removed >= 2  # inner and (cascaded) outer switch for x
    res = simulate(cp, {"a": 0, "b": 1})
    assert res.memory == run_ast(parse(src), {"a": 0, "b": 1})


def test_semantics_preserved_on_corpus():
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        inputs = wl.inputs[0]
        cp = compile_program(wl.source, schema="schema2")
        eliminate_redundant_switches(cp.graph)
        sweep_dead_value_nodes(cp.graph)
        res = simulate(cp, inputs)
        assert res.memory == run_ast(parse(wl.source), inputs), wl.name


def test_never_more_switches_than_schema2():
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        cp = compile_program(wl.source, schema="schema2")
        base = cp.graph.count(OpKind.SWITCH)
        eliminate_redundant_switches(cp.graph)
        assert cp.graph.count(OpKind.SWITCH) <= base


def test_does_not_reach_direct_construction_on_loops():
    """The ablation finding: the iterative pass cannot make tokens bypass
    loops, so it keeps switches the direct construction avoids."""
    src = """
    z := 1;
    i := 0;
    l: i := i + 1;
       if i < 5 then goto l;
    z := z + 1;
    """
    iter_cp = compile_program(src, schema="schema2")
    eliminate_redundant_switches(iter_cp.graph)
    opt_cp = compile_program(src, schema="schema2_opt")
    # direct construction: only i switched (z bypasses the loop);
    # iterative: z's switch at the loop fork survives (its outputs go to
    # the backedge merge and the exit respectively — never one merge)
    assert opt_cp.graph.count(OpKind.SWITCH) == 1
    assert iter_cp.graph.count(OpKind.SWITCH) == 2
    res = simulate(iter_cp)
    assert res.memory == run_ast(parse(src))


def test_sweep_removes_orphaned_predicate():
    src = "x := x + 1; if w == 0 then { skip_target := skip_target; } x := 0;"
    # a conditional whose body references only one variable
    cp = compile_program(FIGURE_9.source, schema="schema2")
    eliminate_redundant_switches(cp.graph)
    before = len(cp.graph.nodes)
    swept = sweep_dead_value_nodes(cp.graph)
    assert swept >= 0
    assert len(cp.graph.nodes) == before - swept


def test_dead_sweep_keeps_live_nodes():
    cp = compile_program("x := 1 + 2;", schema="schema2")
    assert sweep_dead_value_nodes(cp.graph) == 0
    res = simulate(cp)
    assert res.memory["x"] == 3
