"""Tests for the multiresolution region compiler
(:mod:`repro.translate.regions`).

Covers the partition legality rules, the stitched-vs-monolithic
differential (structure AND behaviour, every legal schema), the
fully-goto degenerate fallback, the region-annotated certificate
errors, and the ``region_stitch`` verifier's accept/reject behaviour.
"""

import copy
import dataclasses

import pytest

from repro.dfg.stats import graph_stats
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import CompileOptions, compile_program, simulate
from repro.translate.regions import (
    INCOMPATIBLE_KNOBS,
    compile_with_regions,
    legal_cuts,
    partition_spans,
    plan_regions,
    region_eligible,
    region_header,
    region_sources,
    stitch,
)
from repro.translate.verify import VERIFIERS, CertificateError
from repro.validate.oracle import legal_schemas
from repro.validate.progen import GenKnobs, generate

# a handwritten program with clean phase structure: every goto/label
# pair stays local, so cuts exist between the phases
PHASED = """
x := 0; y := 0; z := 1;
l1: y := y + x;
    x := x + 1;
    if x < 4 then goto l1;
z := y * 2;
w := z + y;
l2: w := w - 1;
    if w > 0 then goto l2;
x := z + 1;
"""

# a backedge spanning the whole body: no legal cut anywhere
FLAT_GOTO = """
top: x := x + 1;
     y := x * 2;
     z := y - x;
     w := z + 1;
     if x < 5 then goto top;
"""


def _region_options(**kw):
    kw.setdefault("schema", "schema2_opt")
    kw.setdefault("region_compile", "on")
    kw.setdefault("region_target_stmts", 2)
    return CompileOptions(**kw)


# --------------------------------------------------------------------------
# partitioning


def test_legal_cuts_straightline():
    body = parse("x := 1; y := 2; z := 3;").body
    assert legal_cuts(body) == [1, 2]


def test_legal_cuts_blocked_by_goto_span():
    body = parse(PHASED).body
    cuts = legal_cuts(body)
    # indices: 0..2 assigns, 3..5 the l1 loop, 6 z:=, 7 w:=,
    # 8..9 the l2 loop, 10 x:=
    assert cuts
    for c in cuts:
        # no cut may fall strictly inside either goto/label span
        assert not (3 < c <= 5)
        assert not (8 < c <= 9)
    # cuts at the phase boundaries must survive
    assert 3 in cuts and 6 in cuts and 10 in cuts


def test_legal_cuts_whole_body_goto_blocks_everything():
    body = parse(FLAT_GOTO).body
    assert legal_cuts(body) == []


def test_legal_cuts_unknown_target_blocks_everything():
    # slice off the labelled tail so the goto's target goes undefined
    body = parse("x := 1; goto fin; y := 2; fin: z := 3;").body[:2]
    assert legal_cuts(body) == []


def test_legal_cuts_sees_nested_labels_and_targets():
    src = """
x := 0;
if x < 1 then { goto fin; }
y := 1;
fin: z := 2;
w := 3;
"""
    body = parse(src).body
    cuts = legal_cuts(body)
    # the goto nested in the if (index 1) targets fin (index 3):
    # cuts 2 and 3 are blocked, 1 and 4 are legal
    assert 2 not in cuts and 3 not in cuts
    assert 1 in cuts and 4 in cuts


def test_partition_spans_cover_and_order():
    body = parse(PHASED).body
    spans = partition_spans(body, target_stmts=3)
    assert spans[0][0] == 0 and spans[-1][1] == len(body)
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c and a < b
    assert len(spans) >= 2


def test_partition_spans_single_span_when_no_cut():
    body = parse(FLAT_GOTO).body
    assert partition_spans(body, target_stmts=1) == [(0, len(body))]


def test_region_header_full_interface():
    prog = parse(PHASED)
    hdr = region_header(prog)
    assert hdr.startswith("var ")
    for name in prog.variables():
        assert name in hdr
    # without options, every region source opens with the identical
    # full-interface header
    srcs = region_sources(prog, partition_spans(prog.body, 3))
    assert len({s.split(";")[0] for s in srcs}) == 1
    for s in srcs:
        parse(s)  # each region source must be a valid program


def test_region_sources_reduced_headers():
    """Under a demand-driven schema each region declares only its own
    working set — per-region compile cost must not scale with the whole
    program's variable count."""
    prog = parse(PHASED)
    spans = partition_spans(prog.body, 3)
    srcs = region_sources(prog, spans, _region_options())
    for s in srcs:
        parse(s)
    assert any(
        set(parse(s).variables()) < set(prog.variables()) for s in srcs
    )
    # every name a region's statements reference is declared in it
    for (lo, hi), s in zip(spans, srcs):
        sub = parse(s)
        assert sub.body is not None


# --------------------------------------------------------------------------
# eligibility / fallback


def test_incompatible_knobs_force_monolithic():
    for knob in INCOMPATIBLE_KNOBS:
        opts = _region_options(**{knob: True})
        assert not region_eligible(opts)
        assert plan_regions(parse(PHASED), opts) is None


def test_auto_threshold():
    prog = parse(PHASED)
    auto = _region_options(region_compile="auto")  # default min 256 stmts
    assert plan_regions(prog, auto) is None
    low = _region_options(region_compile="auto", region_min_stmts=1)
    assert plan_regions(prog, low) is not None


def test_flat_goto_falls_back_to_monolithic():
    opts = _region_options()
    cp = compile_with_regions(FLAT_GOTO, opts)
    names = [c.pass_name for c in cp.pass_log]
    assert "region_stitch" not in names
    assert names  # the ordinary pipeline's pass log, not an empty one
    # the requested options are reflected verbatim on the fallback
    assert cp.options.region_compile == "on"
    ref = run_ast(parse(FLAT_GOTO), {})
    assert simulate(cp).memory == ref


def test_compile_program_dispatches_to_regions():
    cp = compile_program(PHASED, options=_region_options())
    assert [c.pass_name for c in cp.pass_log] == ["region_stitch"]
    assert cp.pass_log[0].metrics["regions"] >= 2


# --------------------------------------------------------------------------
# stitched-vs-monolithic differential


@pytest.mark.parametrize("schema", legal_schemas(PHASED))
def test_stitched_matches_monolithic_handwritten(schema):
    mono = compile_program(PHASED, options=CompileOptions(schema=schema))
    reg = compile_program(
        PHASED, options=_region_options(schema=schema)
    )
    assert reg.pass_log[0].pass_name == "region_stitch"
    assert graph_stats(reg.graph) == graph_stats(mono.graph)
    ref = run_ast(parse(PHASED), {})
    assert simulate(reg).memory == ref
    assert simulate(mono).memory == ref


@pytest.mark.parametrize("seed", range(6))
def test_stitched_matches_monolithic_progen(seed):
    """Random programs, every legal schema: the stitched graph must be
    node-for-node the monolithic one and behave identically."""
    gp = generate(seed, GenKnobs(n_stmts=18, array_ops=0.3))
    for schema in legal_schemas(gp.source):
        mono = compile_program(
            gp.source, options=CompileOptions(schema=schema)
        )
        reg = compile_program(
            gp.source, options=_region_options(schema=schema)
        )
        if reg.pass_log[0].pass_name != "region_stitch":
            continue  # no legal cut for this seed: fallback already tested
        assert graph_stats(reg.graph) == graph_stats(mono.graph), schema
        for inputs in gp.inputs[:2]:
            a = simulate(reg, inputs)
            b = simulate(mono, inputs)
            assert a.memory == b.memory, schema
            assert a.end_values == b.end_values, schema


def test_region_compile_with_verify_full():
    """verify_passes=full recompiles monolithically inside the verifier
    and compares graph structure — the strongest per-compile check."""
    cp = compile_program(
        PHASED, options=_region_options(verify_passes="full")
    )
    cert = cp.pass_log[0]
    assert cert.pass_name == "region_stitch"
    assert cert.verified == "full"


# --------------------------------------------------------------------------
# certificates and errors


def test_stitch_rejects_interface_mismatch():
    opts = _region_options()
    prog = parse(PHASED)
    plan = plan_regions(prog, opts)
    cps = [
        compile_program(src, options=CompileOptions(schema="schema2_opt"))
        for src in plan.sources
    ]
    with pytest.raises(CertificateError) as ei:
        stitch(cps, cps[0].streams[:-1])
    assert "interface" in str(ei.value)


def test_certificate_error_names_region():
    err = CertificateError("switch_placement", "bad", region="region 2 [stmts 4:8)")
    assert err.region == "region 2 [stmts 4:8)"
    assert str(err).startswith("region 2 [stmts 4:8): ")
    # pool workers ship these across pickle; attributes must survive
    import pickle

    back = pickle.loads(pickle.dumps(err))
    assert back.pass_name == "switch_placement"
    assert back.region == err.region


def test_region_stitch_verifier_accepts_and_rejects():
    cp = compile_program(PHASED, options=_region_options())
    ctx = cp.pass_ctx
    witness = cp.pass_log[0].witness
    VERIFIERS["region_stitch"](ctx, witness, "cheap")
    VERIFIERS["region_stitch"](ctx, witness, "full")

    bad = copy.deepcopy(witness)
    bad["nodes"] += 1
    with pytest.raises(CertificateError):
        VERIFIERS["region_stitch"](ctx, bad, "cheap")

    gap = copy.deepcopy(witness)
    gap["spans"][0][1] -= 1  # spans no longer cover the body contiguously
    with pytest.raises(CertificateError):
        VERIFIERS["region_stitch"](ctx, gap, "cheap")


def test_region_options_key_fields_validated():
    with pytest.raises(ValueError):
        CompileOptions(region_compile="sometimes")
    with pytest.raises(ValueError):
        CompileOptions(region_target_stmts=0)
    with pytest.raises(ValueError):
        CompileOptions(region_min_stmts=-1)
    # the region knobs participate in the cache fingerprint
    fp = CompileOptions().fingerprint()
    for f in ("region_compile", "region_min_stmts", "region_target_stmts"):
        assert f in fp
