"""Structural tests for Schema 1 (Figures 3-5): sequential semantics via a
single circulating access token."""

from repro.bench.programs import RUNNING_EXAMPLE
from repro.dfg import OpKind, graph_stats
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def compile1(src):
    return compile_program(src, schema="schema1")


def test_single_access_stream():
    cp = compile1(RUNNING_EXAMPLE.source)
    assert len(cp.streams) == 1
    (s,) = cp.streams
    assert s.governs == {"x", "y"}
    start = cp.graph.node(cp.graph.start)
    assert len(start.seeds) == 1
    assert start.seeds[0].kind == "access"


def test_assignment_block_shape():
    """Figure 3/4: x := e reads each referenced variable then stores;
    loads chain sequentially on the one token."""
    cp = compile1("z := x + y;")
    g = cp.graph
    loads = g.of_kind(OpKind.LOAD)
    stores = g.of_kind(OpKind.STORE)
    assert sorted(n.var for n in loads) == ["x", "y"]
    assert [n.var for n in stores] == ["z"]
    # sequential chaining: one load's access-out feeds the other's access-in
    chained = [
        ld
        for ld in loads
        if any(
            g.node(a.dst).kind is OpKind.LOAD
            for a in g.consumers(ld.id, 1)
        )
    ]
    assert len(chained) == 1


def test_one_switch_per_fork():
    cp = compile1(RUNNING_EXAMPLE.source)
    assert cp.graph.count(OpKind.SWITCH) == 1


def test_one_merge_per_join():
    cp = compile1(RUNNING_EXAMPLE.source)
    assert cp.graph.count(OpKind.MERGE) == 1


def test_no_loop_controls_in_schema1():
    """Footnote 4: cycles are unproblematic under Schema 1, so no loop
    control operators are inserted."""
    cp = compile1(RUNNING_EXAMPLE.source)
    assert cp.graph.count(OpKind.LOOP_ENTRY) == 0
    assert cp.graph.count(OpKind.LOOP_EXIT) == 0
    assert cp.loops == []


def test_statements_execute_sequentially():
    """Inter-statement parallelism is 1: memory operations never overlap."""
    cp = compile1("a := 1; b := 2; c := 3; d := 4;")
    res = simulate(cp, {}, MachineConfig(trace=True))
    # collect firing cycles of stores; they must be strictly ordered
    store_cycles = [
        cyc
        for (cyc, nid, desc, _) in res.trace
        if desc.startswith("store")
    ]
    assert store_cycles == sorted(store_cycles)
    assert len(set(store_cycles)) == 4


def test_expression_parallelism_within_statement_allowed():
    """Schema 1 allows parallelism *within* a statement's expression."""
    cp = compile1("z := (a + b) * (c + d);")
    res = simulate(cp, {"a": 1, "b": 2, "c": 3, "d": 4})
    assert res.memory["z"] == 21
    # the two additions can fire in the same cycle
    assert res.metrics.peak_parallelism >= 2


def test_loop_reuses_tags_safely():
    """Schema 1 does not retag iterations, yet the strict sequencing means
    tokens never clash (footnote 4)."""
    cp = compile1(RUNNING_EXAMPLE.source)
    res = simulate(cp)  # on_clash defaults to raise
    assert res.memory["x"] == 5 and res.memory["y"] == 5
    assert res.metrics.clashes == 0


def test_graph_size_linear_in_statements():
    src_small = "a := 1; b := 2;"
    src_big = src_small * 8
    small = graph_stats(compile1(src_small).graph).nodes
    big = graph_stats(compile1(src_big).graph).nodes
    assert big < small * 10


def test_access_arcs_dominate():
    """The dotted sequencing arcs exist alongside value arcs."""
    cp = compile1(RUNNING_EXAMPLE.source)
    st = graph_stats(cp.graph)
    assert st.access_arcs > 0 and st.value_arcs > 0
