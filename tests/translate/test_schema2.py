"""Tests for Schema 2 (Section 3, Figures 6-8): per-variable access tokens,
loop control necessity."""

import pytest

from repro.bench.programs import RUNNING_EXAMPLE
from repro.dfg import OpKind
from repro.machine import MachineConfig, TokenClashError
from repro.translate import compile_program, simulate


def compile2(src, **kw):
    return compile_program(src, schema="schema2", **kw)


def test_one_stream_per_variable():
    cp = compile2(RUNNING_EXAMPLE.source)
    assert sorted(s.name for s in cp.streams) == ["x", "y"]
    for s in cp.streams:
        assert s.governs == s.members


def test_every_fork_switches_every_stream():
    cp = compile2(RUNNING_EXAMPLE.source)
    assert cp.graph.count(OpKind.SWITCH) == 2  # one fork x two variables


def test_loop_controls_present_and_carry_all_streams():
    cp = compile2(RUNNING_EXAMPLE.source)
    les = cp.graph.of_kind(OpKind.LOOP_ENTRY)
    lxs = cp.graph.of_kind(OpKind.LOOP_EXIT)
    assert len(les) == 1 and len(lxs) == 1
    assert les[0].nchannels == 2
    assert set(les[0].channel_labels) == {"x", "y"}
    assert lxs[0].nchannels == 2


def test_independent_chains_overlap():
    """Figure 8's point: operations on x proceed independently of y."""
    src = "a := a + 1; b := b + 1;"
    cp = compile2(src)
    res = simulate(cp, {}, MachineConfig(trace=True))
    mem_cycles = {}
    for cyc, nid, desc, _ in res.trace:
        if desc.startswith(("load", "store")):
            mem_cycles.setdefault(desc.split()[1], []).append(cyc)
    # a's load and b's load fire in the same cycle (parallel chains)
    assert mem_cycles["a"][0] == mem_cycles["b"][0]


def test_schema2_faster_than_schema1():
    cp1 = compile_program(RUNNING_EXAMPLE.source, schema="schema1")
    cp2 = compile2(RUNNING_EXAMPLE.source)
    r1 = simulate(cp1)
    r2 = simulate(cp2)
    assert r1.memory == r2.memory
    assert r2.metrics.cycles < r1.metrics.cycles


def test_broken_without_loop_controls():
    """Section 3 / Figure 8: without loop entry/exit, the cyclic Schema 2
    graph 'does not specify a meaningful dataflow computation' — same-tag
    tokens clash.  We slow y's chain so the x chain races ahead, exactly
    the load-L-fires-again scenario the paper describes."""
    cp = compile2(RUNNING_EXAMPLE.source, insert_loops=False)
    assert cp.graph.count(OpKind.LOOP_ENTRY) == 0
    config = MachineConfig(on_clash="record", memory_latency=8)
    # slow down y's store so iteration k+1's token reaches y's adder first
    for node in cp.graph.nodes.values():
        if node.kind is OpKind.STORE and node.var == "y":
            node.latency = 60
    res = simulate(cp, config=config)
    assert res.metrics.clashes > 0, "expected same-tag token clash"


def test_with_loop_controls_no_clash():
    cp = compile2(RUNNING_EXAMPLE.source)
    for node in cp.graph.nodes.values():
        if node.kind is OpKind.STORE and node.var == "y":
            node.latency = 60
    res = simulate(cp, config=MachineConfig(memory_latency=8))
    assert res.metrics.clashes == 0
    assert res.memory["x"] == 5 and res.memory["y"] == 5


def test_graph_size_is_O_E_V():
    """Section 3: one dataflow edge per CFG edge per variable."""
    base_vars = "a := a + 1; if a < 3 then { b := b + 1; } c := a;"
    cp = compile2(base_vars)
    E = cp.cfg.num_edges()
    V = len(cp.streams)
    arcs = cp.graph.num_arcs()
    assert arcs <= 4 * E * V  # within a small constant of E*V
    assert arcs >= E  # and at least linear in E


def test_aliasing_rejected():
    with pytest.raises(ValueError):
        compile2("alias (x, y); x := 1;")


def test_tokens_flow_through_unreferencing_statements():
    """Figure 6: tokens for variables not used by a statement flow directly
    to the next statement — no operators touch them, but the switch count
    still reflects all-paths routing."""
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cp = compile2(src)
    # all-paths: the fork switches w, x, AND y
    assert cp.graph.count(OpKind.SWITCH) == 3
    res = simulate(cp, {"w": 0})
    assert res.memory["x"] == 0 and res.memory["y"] == 1
