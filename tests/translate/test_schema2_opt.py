"""Tests for the optimized construction (Section 4.2, Figure 9/11)."""

from repro.bench.programs import CORPUS, FIGURE_9, RUNNING_EXAMPLE
from repro.dfg import OpKind, graph_stats
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

import pytest

FIG9_SRC = FIGURE_9.source


def test_figure_9_redundant_switch_eliminated():
    """Schema 2 places 3 switches at the fork (w, x, y); the optimized
    construction places only 1 (y) — w is consumed by the predicate and
    forwarded, x bypasses entirely."""
    base = compile_program(FIG9_SRC, schema="schema2")
    opt = compile_program(FIG9_SRC, schema="schema2_opt")
    assert base.graph.count(OpKind.SWITCH) == 3
    assert opt.graph.count(OpKind.SWITCH) == 1
    r0 = simulate(base, {"w": 0})
    r1 = simulate(opt, {"w": 0})
    assert r0.memory == r1.memory


def test_figure_9_x_overlaps_predicate():
    """The optimization's payoff: 'no order imposed between the calculation
    of the predicate w = 0 and the execution of the second assignment to
    x'.  With a slow predicate, x := 0 completes long before the branch
    resolves in the optimized graph, but not in the base graph."""
    config = MachineConfig(trace=True)

    def store_x0_cycle(cp):
        res = simulate(cp, {"w": 0}, config)
        stores = [
            cyc
            for cyc, nid, desc, _ in res.trace
            if desc == "store x"
        ]
        return stores[-1], res.metrics.cycles

    base = compile_program(FIG9_SRC, schema="schema2")
    opt = compile_program(FIG9_SRC, schema="schema2_opt")
    # make the predicate slow
    for cp in (base, opt):
        for n in cp.graph.nodes.values():
            if n.kind is OpKind.BINOP and n.op == "==":
                n.latency = 50
    base_store, _ = store_x0_cycle(base)
    opt_store, _ = store_x0_cycle(opt)
    assert opt_store < 50 < base_store


def test_merges_only_at_multi_source_joins():
    """Figure 11's build step: a join with a single source is no operator."""
    opt = compile_program(RUNNING_EXAMPLE.source, schema="schema2_opt")
    # the loop header join's merging happens inside LOOP_ENTRY; no plain
    # merges are needed at all
    assert opt.graph.count(OpKind.MERGE) == 0
    # figure 9 keeps exactly one merge (y's two definitions)
    opt9 = compile_program(FIG9_SRC, schema="schema2_opt")
    assert opt9.graph.count(OpKind.MERGE) == 1


def test_loop_bypass():
    """Section 4: tokens bypass loops in which they are not needed."""
    src = """
    z := 1;
    i := 0;
    l: i := i + 1;
       if i < 5 then goto l;
    z := z + 1;
    """
    opt = compile_program(src, schema="schema2_opt")
    les = opt.graph.of_kind(OpKind.LOOP_ENTRY)
    assert len(les) == 1
    # only i circulates through the loop; z bypasses
    assert les[0].channel_labels == ("i",)
    res = simulate(opt)
    assert res.memory["z"] == 2 and res.memory["i"] == 5


def test_bypassing_token_not_delayed_by_loop():
    """z's token must not wait for the loop: with slow memory the loop
    takes hundreds of cycles, but z's second store can complete first
    (it only waits for its own chain)."""
    src = """
    z := 1;
    i := 0;
    l: i := i + 1;
       if i < 20 then goto l;
    z := z + 1;
    """
    opt = compile_program(src, schema="schema2_opt")
    res = simulate(opt, {}, MachineConfig(trace=True, memory_latency=10))
    z_stores = [
        cyc for cyc, _, desc, _ in res.trace if desc == "store z"
    ]
    assert len(z_stores) == 2
    assert z_stores[-1] < res.metrics.cycles / 2


def test_fork_with_no_needed_switches_disappears():
    """A fork whose branches touch nothing generates no code."""
    src = """
    x := 1;
    if x < 5 then goto l;
    l: x := 2;
    """
    opt = compile_program(src, schema="schema2_opt")
    assert opt.graph.count(OpKind.SWITCH) == 0
    res = simulate(opt)
    assert res.memory["x"] == 2


def test_switch_count_never_exceeds_schema2():
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        base = compile_program(wl.source, schema="schema2")
        opt = compile_program(wl.source, schema="schema2_opt")
        assert (
            opt.graph.count(OpKind.SWITCH) <= base.graph.count(OpKind.SWITCH)
        ), wl.name
        assert (
            opt.graph.count(OpKind.MERGE) <= base.graph.count(OpKind.MERGE)
        ), wl.name


def test_optimized_not_slower_on_corpus():
    """The optimized graph removes ordering constraints, so its idealized
    critical path should not exceed base Schema 2's (small slack allowed:
    constant-trigger wiring differs between the constructions by a couple
    of cycles, which is noise, not an ordering constraint)."""
    total_base = total_opt = 0
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        inputs = wl.inputs[0]
        base = simulate(compile_program(wl.source, schema="schema2"), inputs)
        opt = simulate(
            compile_program(wl.source, schema="schema2_opt"), inputs
        )
        assert base.memory == opt.memory
        assert opt.metrics.cycles <= base.metrics.cycles * 1.1 + 5, wl.name
        total_base += base.metrics.cycles
        total_opt += opt.metrics.cycles
    assert total_opt < total_base  # clearly better in aggregate


def test_same_memory_ops_as_schema2():
    """The optimization removes switches/merges, not loads/stores."""
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        base = graph_stats(compile_program(wl.source, schema="schema2").graph)
        opt = graph_stats(
            compile_program(wl.source, schema="schema2_opt").graph
        )
        assert base.memory_ops == opt.memory_ops, wl.name


def test_multi_exit_loop_optimized():
    wl = next(w for w in CORPUS if w.name == "multi_exit_loop")
    opt = compile_program(wl.source, schema="schema2_opt")
    res = simulate(opt)
    assert res.memory["r"] == 45  # 1+..+9 = 45 > 40
