"""Tests for Schema 3 (Section 5, Figures 12-13): aliasing-aware access
collection parameterized by a cover."""

from repro.bench.programs import FORTRAN_ALIAS
from repro.dfg import OpKind, graph_stats
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate

import pytest

SRC = FORTRAN_ALIAS.source


def synch_arities(cp):
    return sorted(
        n.nports for n in cp.graph.nodes.values() if n.kind is OpKind.SYNCH
    )


def test_singleton_cover_synch_trees_match_access_sets():
    """With one token per variable and [x]={x,z}, [y]={y,z}, [z]={x,y,z}:
    ops on x or y collect 2 tokens, ops on z collect 3 — so synch trees of
    arity 2 and 3 appear (Figures 12-13's read/write blocks)."""
    cp = compile_program(SRC, schema="schema3", cover="singletons")
    arities = synch_arities(cp)
    assert 2 in arities and 3 in arities
    assert all(a in (2, 3) for a in arities)


def test_whole_cover_needs_no_synch():
    """The single-element cover degenerates to one token: no collection."""
    cp = compile_program(SRC, schema="schema3", cover="whole")
    assert synch_arities(cp) == []
    assert len(cp.streams) == 1


def test_alias_classes_cover():
    cp = compile_program(SRC, schema="schema3", cover="alias_classes")
    # [x] and [y] are contained in [z], so the aliased cluster collapses to
    # one element; unaliased w keeps its own token
    assert sorted(s.name for s in cp.streams) == ["w", "x+y+z"]


def test_all_covers_compute_the_same_result():
    ref = run_ast(parse(SRC))
    for cover in ("singletons", "whole", "alias_classes"):
        for schema in ("schema3", "schema3_opt"):
            cp = compile_program(SRC, schema=schema, cover=cover)
            assert simulate(cp).memory == ref, (schema, cover)


def test_aliased_read_write_ordering():
    """Alias declarations are conservative MAY-alias facts used for
    ordering; every name is still its own location at runtime (the alias
    relation is not transitive, so names cannot simply share storage).
    All covers must agree with the sequential reference."""
    src = """
    alias (p, q);
    p := 10;
    t := q;
    q := t + 5;
    r := p;
    """
    ref = run_ast(parse(src))
    assert ref["t"] == 0 and ref["q"] == 5 and ref["r"] == 10
    for cover in ("singletons", "whole", "alias_classes"):
        cp = compile_program(src, schema="schema3", cover=cover)
        assert simulate(cp).memory == ref, cover


def test_completion_replicates_to_all_collected_streams():
    """After an op on z collects x,y,z tokens, all three streams continue
    from its completion: the store's access-out fans to at least the three
    continuations."""
    cp = compile_program(SRC, schema="schema3", cover="singletons")
    g = cp.graph
    z_store = next(
        n for n in g.nodes.values() if n.kind is OpKind.STORE and n.var == "z"
    )
    assert len(g.consumers(z_store.id, 0)) >= 3


def test_parallelism_cover_tradeoff():
    """Section 5: covers trade parallelism against synchronization.  Ops on
    an aliased cluster always serialize (they share tokens), but under a
    fine cover the *unaliased* chains a and b run concurrently with each
    other and with the cluster; the whole cover serializes everything and
    needs no synchronization at all."""
    src = """
    alias (p, q);
    p := 1;
    a := a + 1; a := a * 2; a := a + 3; a := a * 4;
    b := b + 5; b := b * 6; b := b + 7; b := b * 8;
    q := p + 2;
    """
    from repro.machine import MachineConfig

    config = MachineConfig(memory_latency=10)
    ref = run_ast(parse(src))
    fine = simulate(
        compile_program(src, schema="schema3", cover="singletons"),
        config=config,
    )
    coarse = simulate(
        compile_program(src, schema="schema3", cover="whole"), config=config
    )
    assert fine.memory == ref and coarse.memory == ref
    assert fine.metrics.cycles < coarse.metrics.cycles
    # and the fine cover pays in synchronization operators (the p/q ops
    # collect two tokens each)
    assert fine.metrics.synch_ops > coarse.metrics.synch_ops


def test_unaliased_program_schema3_equals_schema2_shape():
    src = "a := 1; b := a + 2; c := b * 3;"
    s2 = graph_stats(compile_program(src, schema="schema2").graph)
    s3 = graph_stats(
        compile_program(src, schema="schema3", cover="singletons").graph
    )
    assert s2.nodes == s3.nodes
    assert s2.arcs == s3.arcs
    assert s3.synchs == 0


def test_schema3_opt_reduces_switches():
    src = """
    alias (x, z);
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    z := 0;
    """
    base = compile_program(src, schema="schema3", cover="singletons")
    opt = compile_program(src, schema="schema3_opt", cover="singletons")
    assert opt.graph.count(OpKind.SWITCH) < base.graph.count(OpKind.SWITCH)
    ref = run_ast(parse(src), {"w": 1})
    assert simulate(opt, {"w": 1}).memory == ref


def test_entry_and_exit_use_every_token():
    """Section 5: 'The entry and exit points of the dataflow graph are
    considered to be a use of every variable' — every stream is seeded and
    every stream reaches END."""
    cp = compile_program(SRC, schema="schema3", cover="singletons")
    start = cp.graph.node(cp.graph.start)
    end = cp.graph.node(cp.graph.end)
    assert len(start.seeds) == len(cp.streams)
    assert len(end.returns) == len(cp.streams)
    for p in range(len(end.returns)):
        assert cp.graph.producer(end.id, p) is not None
