"""Tests for the source-vector computation (Section 4.2, Figure 11)."""

from repro.analysis.dominance import postdominator_tree
from repro.bench.programs import CORPUS
from repro.cfg import NodeKind, build_cfg, insert_loop_controls
from repro.lang import parse
from repro.translate import (
    compute_source_vectors,
    streams_for,
    switch_placement,
)

import pytest


def svs_for(src, schema="schema2"):
    prog = parse(src)
    cfg, loops = insert_loop_controls(build_cfg(prog))
    streams = streams_for(prog, schema)
    placement = switch_placement(cfg, streams)
    return cfg, streams, compute_source_vectors(
        cfg, streams, placement, loops
    )


def test_statement_sv_is_single_source():
    """Paper: "If N is a switch which needs access_x or a statement which
    refers to x, then each set SV_N(x) will have a single element"."""
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        cfg, streams, svs = svs_for(wl.source)
        for nid in cfg.nodes:
            node = cfg.node(nid)
            for s in streams:
                if node.kind is NodeKind.ASSIGN and s.referenced_by(node):
                    assert len(svs.at(nid, s.name)) == 1, (wl.name, nid, s)
                if node.kind is NodeKind.FORK and svs.needs_switch(
                    nid, s.name
                ):
                    assert len(svs.at(nid, s.name)) == 1, (wl.name, nid, s)


def test_figure_9_bypass_source():
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cfg, streams, svs = svs_for(src)
    assigns = sorted(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.ASSIGN
    )
    x_inc = next(n for n in assigns if cfg.node(n).stores() == {"x"})
    x_zero = [n for n in assigns if cfg.node(n).stores() == {"x"}][1]
    # x := 0 receives x's token straight from x := x + 1 (bypassing the if)
    assert svs.at(x_zero, "x") == {(x_inc, True)}


def test_figure_9_join_merges_y():
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cfg, streams, svs = svs_for(src)
    join = next(n for n in cfg.nodes if cfg.node(n).kind is NodeKind.JOIN)
    ys = svs.at(join, "y")
    assert len(ys) == 2  # both definitions of y: a merge is built
    # x's bypass lands at the join (the fork's immediate postdominator) as
    # a single source — a wire, not a merge
    x_inc = next(
        n
        for n in cfg.nodes
        if cfg.node(n).kind is NodeKind.ASSIGN
        and cfg.node(n).loads() == {"x"}
    )
    assert svs.at(join, "x") == {(x_inc, True)}


def test_every_stream_reaches_end():
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        cfg, streams, svs = svs_for(wl.source)
        for s in streams:
            assert svs.at(cfg.exit, s.name), (wl.name, s.name)


def test_unreferenced_variable_goes_straight_to_end():
    src = "alias_free := 1; q := 2;"
    cfg, streams, svs = svs_for(src)
    # a variable referenced only at its own statement: end receives the
    # statement's source directly
    a = next(
        n
        for n in cfg.nodes
        if cfg.node(n).kind is NodeKind.ASSIGN
        and cfg.node(n).stores() == {"alias_free"}
    )
    assert svs.at(cfg.exit, "alias_free") == {(a, True)}


def test_loop_entry_svs():
    src = """
    x := 0;
    l: y := x + 1;
       x := x + 1;
       if x < 5 then goto l;
    """
    cfg, streams, svs = svs_for(src)
    le = next(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.LOOP_ENTRY
    )
    x0 = next(
        n
        for n in cfg.nodes
        if cfg.node(n).kind is NodeKind.ASSIGN
        and cfg.node(n).stores() == {"x"}
        and not (cfg.node(n).loads())
    )
    assert svs.at(le, "x") == {(x0, True)}
    # y enters the loop straight from start (never touched before)
    assert svs.at(le, "y") == {(cfg.entry, True)}


def test_backedge_edge_sources():
    src = """
    x := 0;
    l: y := x + 1;
       x := x + 1;
       if x < 5 then goto l;
    """
    cfg, streams, svs = svs_for(src)
    le = next(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.LOOP_ENTRY
    )
    fork = next(n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK)
    back = next(e for e in cfg.in_edges(le) if e.src == fork)
    # x returns via the fork's True switch output
    assert svs.edge_sources(back, "x") == {(fork, True)}
    assert svs.edge_sources(back, "y") == {(fork, True)}


def test_multiple_sources_only_at_merge_points():
    for wl in CORPUS:
        if wl.has_aliasing():
            continue
        cfg, streams, svs = svs_for(wl.source)
        for nid in cfg.nodes:
            kind = cfg.node(nid).kind
            if kind in (NodeKind.JOIN, NodeKind.LOOP_ENTRY, NodeKind.END):
                continue
            for s in streams:
                assert len(svs.at(nid, s.name)) <= 1, (wl.name, nid, s.name)
