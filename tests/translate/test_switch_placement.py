"""Tests for switch placement (Section 4.1, Figure 10) against the
brute-force Definition 2/3 oracle — the executable form of Theorem 1."""

import pytest

from repro.analysis.control_dep import needs_switch_brute_force
from repro.analysis.dominance import postdominator_tree
from repro.bench.generators import random_program, random_structured_program
from repro.bench.programs import CORPUS
from repro.cfg import NodeKind, build_cfg, insert_loop_controls
from repro.lang import expand_subroutines, parse
from repro.translate import streams_for, switch_placement
from repro.translate.switch_placement import count_physical_switches


def placement_for(src):
    prog = parse(src)
    cfg, loops = insert_loop_controls(build_cfg(prog))
    streams = streams_for(prog, "schema2")
    return cfg, streams, switch_placement(cfg, streams)


def test_figure_9_placement():
    """The fork does not need a switch for x, does for y, not for w."""
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cfg, streams, placement = placement_for(src)
    fork = next(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK
    )
    assert fork not in placement["x"]
    assert fork in placement["y"]
    assert fork not in placement["w"]


def test_loop_fork_needs_switches_for_loop_variables():
    src = """
    x := 0;
    l: y := x + 1;
       x := x + 1;
       if x < 5 then goto l;
    """
    cfg, streams, placement = placement_for(src)
    fork = next(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK
    )
    assert fork in placement["x"]
    assert fork in placement["y"]


def test_variable_unused_in_loop_bypasses():
    src = """
    z := 1;
    i := 0;
    l: i := i + 1;
       if i < 5 then goto l;
    z := z + 1;
    """
    cfg, streams, placement = placement_for(src)
    fork = next(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK
    )
    assert fork in placement["i"]
    assert fork not in placement["z"]


def test_nested_conditionals_iterate():
    """Removing the inner redundant switch makes the outer redundant too —
    CD+ captures the iteration (Section 4's nested if-then-else example,
    read in reverse: x used nowhere inside means NO switches; x used in the
    inner branch means switches at BOTH forks)."""
    used_inside = """
    if a == 0 then {
      if b == 0 then { x := 1; }
    }
    r := x;
    """
    cfg, streams, placement = placement_for(used_inside)
    forks = [n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK]
    assert all(f in placement["x"] for f in forks)

    unused_inside = """
    if a == 0 then {
      if b == 0 then { y := 1; }
    }
    r := x;
    """
    cfg, streams, placement = placement_for(unused_inside)
    forks = [n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK]
    assert all(f not in placement["x"] for f in forks)


@pytest.mark.parametrize("wl", CORPUS, ids=[w.name for w in CORPUS])
def test_placement_matches_brute_force_on_corpus(wl):
    prog = parse(wl.source)
    if prog.subs:
        prog, _ = expand_subroutines(prog)
    cfg, loops = insert_loop_controls(build_cfg(prog))
    streams = streams_for(prog, "schema3")  # handles aliasing uniformly
    placement = switch_placement(cfg, streams)
    pdom = postdominator_tree(cfg)
    forks = [n for n in cfg.nodes if cfg.is_fork(n)]
    for s in streams:
        for f in forks:
            oracle = any(
                needs_switch_brute_force(cfg, f, v, pdom)
                for v in s.governs
            )
            assert (f in placement[s.name]) == oracle, (wl.name, f, s.name)


@pytest.mark.parametrize("seed", range(8))
def test_placement_matches_brute_force_on_random_programs(seed):
    prog = (
        random_structured_program(seed)
        if seed % 2
        else random_program(seed)
    )
    cfg, _ = insert_loop_controls(build_cfg(prog))
    streams = streams_for(prog, "schema2")
    placement = switch_placement(cfg, streams)
    pdom = postdominator_tree(cfg)
    forks = [n for n in cfg.nodes if cfg.is_fork(n)]
    for s in streams:
        for f in forks:
            oracle = any(
                needs_switch_brute_force(cfg, f, v, pdom)
                for v in s.governs
            )
            assert (f in placement[s.name]) == oracle


def test_count_physical_switches_excludes_start():
    src = "x := 1;"
    cfg, streams, placement = placement_for(src)
    # start formally needs a switch for x (x is between start and end) but
    # no physical switch is counted for it
    assert cfg.entry in placement["x"]
    assert count_physical_switches(cfg, placement) == 0
