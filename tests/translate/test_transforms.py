"""Tests for the Section 6.2 transforms: parallel reads and store-to-load
forwarding."""

from repro.bench.programs import CORPUS
from repro.dfg import OpKind, graph_stats
from repro.interp import run_ast
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate
from repro.translate.transforms import forward_stores, parallelize_reads


def test_parallel_reads_rewrites_schema1_chains():
    """Schema 1 chains all loads of a statement on one token; the transform
    replicates the access and collects with a synch."""
    src = "z := a + b + c + d;"
    base = compile_program(src, schema="schema1")
    assert graph_stats(base.graph).synchs == 0
    n = parallelize_reads(base.graph)
    assert n == 1
    st = graph_stats(base.graph)
    assert st.synchs == 1
    synch = base.graph.of_kind(OpKind.SYNCH)[0]
    assert synch.nports == 4


def test_parallel_reads_latency_win():
    """Four loads at latency L cost ~4L serialized, ~L replicated."""
    src = "z := a + b + c + d;"
    config = MachineConfig(memory_latency=20)
    base = simulate(compile_program(src, schema="schema1"), config=config)
    fast = simulate(
        compile_program(src, schema="schema1", parallel_reads=True),
        config=config,
    )
    assert base.memory == fast.memory
    assert fast.metrics.cycles < base.metrics.cycles - 30


def test_parallel_reads_preserves_semantics_on_corpus():
    for wl in CORPUS:
        inputs = wl.inputs[0]
        ref = run_ast(parse(wl.source), inputs)
        cp = compile_program(wl.source, schema="schema1", parallel_reads=True)
        assert simulate(cp, inputs).memory == ref, wl.name


def test_parallel_reads_aliased_sequences():
    """Section 6.2: "Parallel access to memory can be allowed among any set
    of reads, even to potentially aliased variables"."""
    src = "alias (p, q); z := p + q; w := p * q;"
    ref = run_ast(parse(src), {"p": 3, "q": 4})
    cp = compile_program(
        src, schema="schema3", cover="whole", parallel_reads=True
    )
    assert cp.reads_parallelized >= 1
    assert simulate(cp, {"p": 3, "q": 4}).memory == ref


def test_no_chains_no_rewrites():
    src = "x := 1;"
    cp = compile_program(src, schema="schema2_opt")
    assert parallelize_reads(cp.graph) == 0


def test_forward_stores_removes_load():
    """x := e; y := x — the load of x disappears; y's store reads e's value
    directly."""
    src = "x := 5; y := x;"
    cp = compile_program(src, schema="schema2_opt")
    before = graph_stats(cp.graph)
    n = forward_stores(cp.graph)
    after = graph_stats(cp.graph)
    assert n == 1
    assert after.loads == before.loads - 1
    res = simulate(cp)
    assert res.memory["y"] == 5 and res.memory["x"] == 5


def test_forward_stores_chain_fixpoint():
    """Forwarding exposes further pairs: x := 5; y reads x; z reads x."""
    src = "x := 5; y := x; z := x;"
    cp = compile_program(src, schema="schema1")
    n = forward_stores(cp.graph)
    assert n >= 1
    res = simulate(cp)
    assert res.memory == {"x": 5, "y": 5, "z": 5}


def test_forward_stores_respects_intervening_aliased_store():
    """alias(p,q): p := 1; q := 2; r := p — the read of p must NOT forward
    from the store to p (q's store intervenes on the shared token chain)."""
    src = "alias (p, q); p := 1; q := 2; r := p;"
    ref = run_ast(parse(src))
    cp = compile_program(
        src, schema="schema3", cover="whole", forward_stores=True
    )
    # the direct STORE->LOAD pattern does not match across the q store
    assert simulate(cp).memory == ref


def test_forward_stores_preserves_semantics_on_corpus():
    for wl in CORPUS:
        inputs = wl.inputs[0]
        ref = run_ast(parse(wl.source), inputs)
        for schema in (
            "schema1",
            "schema3" if wl.has_aliasing() else "schema2_opt",
        ):
            cp = compile_program(
                wl.source, schema=schema, forward_stores=True
            )
            assert simulate(cp, inputs).memory == ref, (wl.name, schema)


def test_combined_transforms():
    src = "x := a + b; y := x; z := y + c;"
    ref = run_ast(parse(src), {"a": 1, "b": 2, "c": 3})
    cp = compile_program(
        src, schema="schema1", parallel_reads=True, forward_stores=True
    )
    assert simulate(cp, {"a": 1, "b": 2, "c": 3}).memory == ref
