"""CLI suite for ``repro fuzz``: argument plumbing, exit codes, replay
mode, and knob parsing — all through ``main()`` in-process so coverage
and monkeypatching work."""

import pytest

import repro.semantics as semantics
from repro.__main__ import main

pytestmark = pytest.mark.fuzz


@pytest.mark.tier1
def test_fuzz_smoke_exits_zero(capsys):
    assert main(["fuzz", "--seed", "0", "--count", "2",
                 "--knob", "n_stmts=6", "--no-pool"]) == 0
    err = capsys.readouterr().err
    assert "no divergences" in err
    assert "check latency" in err


def test_fuzz_bad_knob_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["fuzz", "--count", "1", "--knob", "bogus=1"])


def test_fuzz_budget_cuts_generation_short(capsys):
    assert main(["fuzz", "--count", "500", "--budget-s", "0.0",
                 "--no-pool"]) == 0
    assert "budget exhausted" in capsys.readouterr().err


@pytest.mark.slow  # minimization re-runs the full oracle per candidate
def test_fuzz_divergence_exits_nonzero_and_minimizes(
    monkeypatch, tmp_path, capsys
):
    monkeypatch.setitem(semantics.BINOP_FUNCS, "*", lambda a, b: a * b + 1)
    code = main(["fuzz", "--seed", "2", "--count", "3", "--minimize",
                 "--out", str(tmp_path), "--no-pool"])
    assert code == 1
    out = capsys.readouterr().out
    assert "sim_divergence" in out and "minimized to" in out
    assert list(tmp_path.glob("*.df"))


def test_fuzz_replay_mode(tmp_path, capsys):
    from repro.validate import write_regression

    path = write_regression(
        "x := 1;\ny := x * 2;\n", seed=0, knobs="defaults",
        kind="sim_divergence", route="schema1/packed", baseline="ast",
        detail="old bug", inputs=({},), out_dir=tmp_path,
    )
    assert main(["fuzz", "--replay", str(path)]) == 0
    assert "no divergence" in capsys.readouterr().err


def test_fuzz_replay_mode_reports_live_divergence(
    monkeypatch, tmp_path, capsys
):
    from repro.validate import write_regression

    monkeypatch.setitem(semantics.BINOP_FUNCS, "*", lambda a, b: a * b + 1)
    path = write_regression(
        "x := 3;\ny := x * 5;\n", seed=0, knobs="defaults",
        kind="sim_divergence", route="schema1/packed", baseline="ast",
        detail="", inputs=({},), out_dir=tmp_path,
    )
    assert main(["fuzz", "--replay", str(path)]) == 1
    assert "sim_divergence" in capsys.readouterr().out


def test_fuzz_replay_malformed_header_is_a_clean_error(tmp_path, capsys):
    """A regression file whose replay header is stale/corrupt must fail
    with a clear message and exit 2 — not an unhandled traceback."""
    bad = tmp_path / "stale.df"
    bad.write_text("# seed=0\n# knobs=bogus_knob=7\nx := 1;\n")
    assert main(["fuzz", "--replay", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "bad regression file" in err
    assert "Traceback" not in err


def test_fuzz_replay_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["fuzz", "--replay", str(tmp_path / "nope.df")]) == 2
    assert "bad regression file" in capsys.readouterr().err


def test_fuzz_blame_flag_smoke(capsys):
    """--blame and --verify-passes plumb through on a clean campaign."""
    assert main(["fuzz", "--seed", "0", "--count", "2",
                 "--knob", "n_stmts=6", "--no-pool", "--blame",
                 "--verify-passes", "cheap"]) == 0
    assert "no divergences" in capsys.readouterr().err
