"""Oracle suite: agreement on known-good programs, the divergence
taxonomy on hand-injected faults, and the build-verification mutation
test — an intentionally broken packed-backend operator must be caught,
classified, and minimized to a handful of lines."""

import pytest

import repro.semantics as semantics
from repro.validate import (
    DETERMINISTIC_METRIC_FIELDS,
    Divergence,
    check_batch_routes,
    check_program,
    generate,
    legal_schemas,
    run_fuzz,
)

pytestmark = pytest.mark.fuzz

SRC = "x := 2;\ny := x * 3;\n"


@pytest.mark.tier1
def test_all_routes_agree_on_seeded_programs():
    for seed in range(4):
        gp = generate(seed)
        report = check_program(gp.source, gp.inputs)
        assert report.ok, report.summary()
        # sanity: the sweep really fanned out (2 interpreters + per
        # schema: 3 loops + finite-PE + 2 cached, x input vectors)
        assert report.routes_run >= 2 + len(report.schemas) * 6


def test_legal_schemas_shrink_under_aliasing():
    assert len(legal_schemas(SRC)) == 6
    aliased = "alias (x, y);\n" + SRC
    assert legal_schemas(aliased) == (
        "schema1", "schema3", "schema3_opt", "memory_elim"
    )
    report = check_program(aliased)
    assert report.ok, report.summary()
    assert report.schemas == legal_schemas(aliased)


def test_disk_cache_route(tmp_path):
    report = check_program(SRC, cache_dir=tmp_path)
    assert report.ok, report.summary()
    assert any(tmp_path.rglob("*.pkl"))  # the disk tier really engaged


def test_ref_crash_classification():
    """A program the reference itself cannot finish (step limit) is a
    generator bug — classified ref_crash, no other routes attempted."""
    endless = "l: x := x + 1;\ngoto l;\n"
    report = check_program(endless, max_steps=1000)
    assert not report.ok
    assert [d.kind for d in report.divergences] == ["ref_crash"]


def test_mutation_is_caught_classified_and_localized(monkeypatch):
    """Break `*` for the flat-array family only (packed binds
    BINOP_FUNCS at init and vectorized shares its runtime table; the
    step/fast loops call apply_binop directly).  The oracle must flag
    exactly the packed and vectorized routes."""
    monkeypatch.setitem(semantics.BINOP_FUNCS, "*", lambda a, b: a * b + 1)
    report = check_program("x := 3;\ny := x * 5;\n")
    assert not report.ok
    assert all(
        "/packed" in d.route or "/vectorized" in d.route
        for d in report.divergences
    )
    assert any("/packed" in d.route for d in report.divergences)
    assert any("/vectorized" in d.route for d in report.divergences)
    kinds = {d.kind for d in report.divergences}
    assert "sim_divergence" in kinds


@pytest.mark.slow
def test_mutation_fuzz_end_to_end_minimizes_small(monkeypatch, tmp_path):
    """The ISSUE acceptance bar: an injected semantics bug is found by a
    short fuzz campaign and the minimized repro is <= 10 source lines."""
    monkeypatch.setitem(semantics.BINOP_FUNCS, "*", lambda a, b: a * b + 1)
    report = run_fuzz(
        seed=0, count=15, minimize_findings=True, out_dir=tmp_path,
        pooled=False,  # pool workers are separate processes: no mutation
        max_findings=1,
    )
    assert not report.ok, "mutation escaped the fuzzer"
    finding = report.findings[0]
    assert finding.divergence.kind == "sim_divergence"
    assert (
        "/packed" in finding.divergence.route
        or "/vectorized" in finding.divergence.route
    )
    assert 0 < finding.minimized_lines <= 10
    assert finding.regression_path is not None
    assert finding.regression_path.exists()


def test_metrics_drift_classification(monkeypatch):
    """Poison one deterministic Metrics field on the packed route only:
    the oracle must report metrics_drift (not sim_divergence) since the
    memory still matches."""
    from repro.machine import packed as packed_mod

    real = packed_mod.PackedSimulator.run

    def warped(self, *a, **kw):
        res = real(self, *a, **kw)
        res.metrics.operations += 1
        return res

    monkeypatch.setattr(packed_mod.PackedSimulator, "run", warped)
    report = check_program(SRC, sim_modes=("step", "packed"),
                           finite_pes=False)
    assert not report.ok
    assert {d.kind for d in report.divergences} == {"metrics_drift"}
    drift = report.divergences[0]
    assert "operations" in drift.detail


def test_deterministic_fields_exist_on_metrics():
    from repro.machine.metrics import Metrics

    m = Metrics()
    for f in DETERMINISTIC_METRIC_FIELDS:
        assert hasattr(m, f), f


@pytest.mark.tier1
def test_batch_routes_agree_serial_vs_pooled():
    programs = [generate(s) for s in range(3)]
    assert check_batch_routes(programs) == []


def test_batch_routes_report_error_mismatch():
    class Fake:
        source = "x := ;;; broken"
        inputs = ({},)
        name = "broken"

    # both routes fail identically -> no divergence (errors must match)
    assert check_batch_routes([Fake()], schema_pick="schema1") == []


def test_divergence_str_is_readable():
    d = Divergence("sim_divergence", "schema1/packed", "ast", "x: 1 != 2")
    assert "schema1/packed" in str(d) and "sim_divergence" in str(d)


def test_divergence_str_carries_guilty_pass():
    d = Divergence(
        "pass_certificate", "schema2_opt", "ast", "placement differs",
        guilty_pass="switch_placement",
    )
    assert "[guilty pass: switch_placement]" in str(d)


BRANCH_SRC = "if p == 0 then goto sk;\nx := x + 1;\nsk: y := x;\n"


def test_pass_certificate_taxonomy(monkeypatch):
    """With the misplaced-switch hook live and verify on, the oracle
    classifies the failure as pass_certificate with the pass name
    attached — not as an anonymous compile_crash."""
    import repro.translate.passes as passes

    monkeypatch.setattr(passes, "_TEST_MISPLACE_SWITCH", True)
    report = check_program(BRANCH_SRC, verify_passes="full")
    assert not report.ok
    certs = [d for d in report.divergences if d.kind == "pass_certificate"]
    assert certs, report.summary()
    assert all(d.guilty_pass == "switch_placement" for d in certs)
    assert all(d.certificate for d in certs)
    # only the optimized schemas run switch placement
    assert {d.route for d in certs} <= {
        "schema2_opt", "schema3_opt", "memory_elim"
    }


def test_assign_blame_annotates_unverified_divergences(monkeypatch):
    """verify off during the sweep, blame afterwards: assign_blame must
    recompile at full and upgrade the compile_crash with a guilty pass."""
    from repro.validate import assign_blame
    import repro.translate.passes as passes

    monkeypatch.setattr(passes, "_TEST_MISPLACE_SWITCH", True)
    report = check_program(BRANCH_SRC)
    assert not report.ok
    assert all(not d.guilty_pass for d in report.divergences)
    assign_blame(report)
    blamed = [d for d in report.divergences if d.guilty_pass]
    assert blamed, report.summary()
    assert all(d.guilty_pass == "switch_placement" for d in blamed)


@pytest.mark.slow
def test_blame_fuzz_end_to_end_minimizes_against_pass(monkeypatch, tmp_path):
    """The ISSUE acceptance bar for blame: with a hook enabled,
    ``run_fuzz(blame=True)`` labels the guilty pass and the minimizer
    converges against that pass's verifier alone (compile-only probes)."""
    from repro.validate import parse_regression
    import repro.translate.passes as passes

    monkeypatch.setattr(passes, "_TEST_MISPLACE_SWITCH", True)
    report = run_fuzz(
        seed=0, count=10, minimize_findings=True, out_dir=tmp_path,
        pooled=False, max_findings=1, blame=True,
    )
    assert not report.ok, "hooked bug escaped the fuzzer"
    finding = report.findings[0]
    assert finding.divergence.guilty_pass == "switch_placement"
    assert finding.minimized_via == "pass:switch_placement"
    assert 0 < finding.minimized_lines <= 10
    meta = parse_regression(finding.regression_path)
    assert meta["guilty_pass"] == "switch_placement"
    assert meta["seed"] is not None


@pytest.mark.tier1
def test_tier_promotion_route_catches_vectorized_fault(monkeypatch):
    """Corrupt the vectorized backend's memory: the tier-promotion
    route — the stream that crosses fast -> packed -> vectorized
    mid-flight, exactly what the service's adaptive JIT does — must
    report divergences attributed to the promoted tier."""
    from repro.machine import vectorized as vec_mod

    real = vec_mod.VectorizedSimulator.run

    def warped(self, *a, **kw):
        res = real(self, *a, **kw)
        res.memory["__tier_bug__"] = 1
        return res

    monkeypatch.setattr(vec_mod.VectorizedSimulator, "run", warped)
    report = check_program(SRC, finite_pes=False)
    assert not report.ok
    tier_divs = [d for d in report.divergences
                 if "tier_promotion" in d.route]
    assert tier_divs, report.summary()
    # only the vectorized rung of the ladder diverged
    assert all(d.route.endswith("/vectorized") for d in tier_divs)


def test_tier_promotion_route_gated_on_full_tier_family(monkeypatch):
    """Without the full fast/packed/vectorized family in sim_modes the
    promotion ladder cannot run, so the route must stay out of the
    sweep (no false attribution to a route that never ran)."""
    from repro.machine import vectorized as vec_mod

    real = vec_mod.VectorizedSimulator.run

    def warped(self, *a, **kw):
        res = real(self, *a, **kw)
        res.memory["__tier_bug__"] = 1
        return res

    monkeypatch.setattr(vec_mod.VectorizedSimulator, "run", warped)
    report = check_program(SRC, sim_modes=("step", "fast", "vectorized"),
                           finite_pes=False)
    assert not report.ok  # the mode loop still catches the fault
    assert not [d for d in report.divergences
                if "tier_promotion" in d.route]
