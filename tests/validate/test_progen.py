"""Generator suite: every emitted program must parse, validate, and
terminate; equal (seed, knobs) pairs must emit identical programs; and
the knobs must actually steer what gets generated."""

import pytest

from repro.cfg import build_cfg
from repro.interp import run_ast
from repro.lang import parse
from repro.validate import GenKnobs, GeneratedProgram, generate

pytestmark = pytest.mark.fuzz

SEEDS = range(60)


@pytest.mark.tier1
def test_generated_programs_parse_and_terminate():
    for seed in SEEDS:
        gp = generate(seed)
        prog = parse(gp.source)  # raises on malformed output
        for inputs in gp.inputs:
            run_ast(prog, inputs, max_steps=500_000)  # raises on runaway


@pytest.mark.tier1
def test_determinism_across_calls():
    assert generate(7) == generate(7)
    k = GenKnobs(n_stmts=25, irreducible=1.0)
    assert generate(7, k) == generate(7, k)
    # and a different seed or knob set actually changes the program
    assert generate(7).source != generate(8).source
    assert generate(7, k).source != generate(7).source


def test_inputs_cover_declared_scalars_and_are_deterministic():
    gp = generate(3, GenKnobs(n_vars=5, n_inputs=4))
    assert len(gp.inputs) == 4
    for vec in gp.inputs:
        assert set(vec) == {f"v{i}" for i in range(5)}
        assert all(-8 <= v <= 9 for v in vec.values())


def test_n_stmts_knob_scales_program_size():
    small = generate(1, GenKnobs(n_stmts=4))
    large = generate(1, GenKnobs(n_stmts=60))
    assert len(large.source.splitlines()) > len(small.source.splitlines())


def test_irreducible_knob_produces_multi_entry_cycles():
    """With the gadget forced on, the CFG must contain the two-entry
    cycle (detected as: some seed yields a program whose text carries
    the irrA/irrB labels and still runs to completion)."""
    hits = 0
    for seed in range(10):
        gp = generate(seed, GenKnobs(irreducible=1.0))
        assert "irrA:" in gp.source and "irrB:" in gp.source
        prog = parse(gp.source)
        build_cfg(prog)  # the gadget must survive CFG construction
        for inputs in gp.inputs:
            run_ast(prog, inputs, max_steps=500_000)
        hits += 1
    assert hits == 10
    off = generate(0, GenKnobs(irreducible=0.0))
    assert "irrA:" not in off.source


def test_alias_and_array_knobs():
    seen_alias = any(
        "alias (" in generate(s, GenKnobs(alias_density=1.0)).source
        for s in range(5)
    )
    assert seen_alias
    none_alias = all(
        "alias (" not in generate(s, GenKnobs(alias_density=0.0)).source
        for s in range(5)
    )
    assert none_alias
    arrayful = generate(2, GenKnobs(array_ops=1.0, n_arrays=2))
    assert "array " in arrayful.source
    arrayless = generate(2, GenKnobs(array_ops=0.0))
    assert "array " not in arrayless.source


def test_int_range_knob_bounds_inputs():
    gp = generate(5, GenKnobs(int_min=0, int_max=3))
    for vec in gp.inputs:
        assert all(0 <= v <= 3 for v in vec.values())


def test_knob_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        GenKnobs(n_vars=0)
    with pytest.raises(ValueError):
        GenKnobs(goto_density=1.5)
    with pytest.raises(ValueError):
        GenKnobs(int_min=5, int_max=1)
    with pytest.raises(ValueError):
        GenKnobs(n_stmts=10 ** 9)


def test_from_items_parses_and_coerces():
    k = GenKnobs.from_items(["n_stmts=20", "irreducible=0.5"])
    assert k.n_stmts == 20 and k.irreducible == 0.5
    with pytest.raises(ValueError):
        GenKnobs.from_items(["no_such_knob=1"])
    with pytest.raises(ValueError):
        GenKnobs.from_items(["n_stmts=abc"])
    with pytest.raises(ValueError):
        GenKnobs.from_items(["n_stmts"])


def test_describe_names_only_non_defaults():
    assert GenKnobs().describe() == "defaults"
    assert GenKnobs(n_stmts=20).describe() == "n_stmts=20"


def test_generated_program_name():
    assert GeneratedProgram(3, GenKnobs(), "skip;", ({},)).name == "gen3"


def test_statements_are_one_per_line():
    """The minimizer deletes whole lines; multi-statement lines would
    make it coarser than statement granularity."""
    gp = generate(11, GenKnobs(n_stmts=30))
    for line in gp.source.splitlines():
        assert line.count(";") <= 1, line
