"""Minimizer suite: ddmin shrinks while preserving the predicate and
parse-validity, refuses non-reproducing inputs, respects its call
budget, and the regression read/write round-trips."""

import pytest

from repro.lang import parse
from repro.validate import minimize, parse_regression, write_regression

pytestmark = pytest.mark.fuzz

# ten independent statements; the "bug" is any program still assigning y
TEN = "\n".join(f"v{i} := {i};" for i in range(9)) + "\ny := 1;\n"


def test_minimize_shrinks_to_the_single_relevant_line():
    result = minimize(TEN, lambda src: "y :=" in src)
    assert result.source == "y := 1;\n"
    assert result.original_lines == 10 and result.lines == 1
    assert result.predicate_calls >= 1
    assert result.line_count == result.lines


def test_minimize_keeps_structural_lines_that_cannot_drop():
    """Deleting just the 'while' or just the '}' breaks the parse, so
    the pair survives together when the predicate needs the body."""
    src = "c := 0;\nwhile c < 2 do {\n  y := 1;\n  c := c + 1;\n}\n"
    result = minimize(src, lambda s: "y :=" in s)
    assert "y := 1;" in result.source
    parse(result.source)  # the output always parses
    assert result.lines < 5


def test_minimize_rejects_non_reproducing_original():
    with pytest.raises(ValueError):
        minimize(TEN, lambda src: False)


def test_minimize_never_feeds_unparsable_candidates():
    seen = []

    def predicate(src):
        parse(src)  # raises -> test fails if an unparsable one leaks
        seen.append(src)
        return "y :=" in src

    minimize(TEN, predicate)
    assert seen


def test_minimize_respects_predicate_call_budget():
    calls = []

    def predicate(src):
        calls.append(None)
        return "y :=" in src

    result = minimize(TEN, predicate, max_predicate_calls=5)
    assert len(calls) <= 5
    assert "y :=" in result.source  # best-so-far is still a repro


def test_write_and_parse_regression_round_trip(tmp_path):
    path = write_regression(
        "y := 1;\n",
        seed=42,
        knobs="n_stmts=20",
        kind="sim_divergence",
        route="schema1/packed",
        baseline="ast",
        detail="y: 2 != 1",
        inputs=({"v0": 3}, {"v0": -1}),
        out_dir=tmp_path,
    )
    assert path.parent == tmp_path and path.suffix == ".df"
    meta = parse_regression(path)
    assert meta["seed"] == 42
    assert meta["kind"] == "sim_divergence"
    assert meta["route"] == "schema1/packed"
    assert meta["knobs"] == "n_stmts=20"
    assert meta["inputs"] == ({"v0": 3}, {"v0": -1})
    assert "y := 1;" in meta["source"]
    # the file is itself a runnable program: the header is comments
    parse(meta["source"])


def test_write_regression_never_clobbers(tmp_path):
    common = dict(seed=1, knobs="defaults", kind="sim_divergence",
                  route="r", baseline="b", detail="d", inputs=({},),
                  out_dir=tmp_path)
    p1 = write_regression("x := 1;\n", **common)
    p2 = write_regression("x := 2;\n", **common)
    assert p1 != p2 and p1.exists() and p2.exists()


def test_parse_regression_tolerates_handwritten_files(tmp_path):
    bare = tmp_path / "hand.df"
    bare.write_text("x := 1;\n")
    meta = parse_regression(bare)
    assert meta["inputs"] == ({},) and meta["seed"] is None
    assert meta["source"] == "x := 1;\n"


def test_minimize_respects_deadline():
    import time

    calls = []

    def predicate(src):
        calls.append(None)
        return "y :=" in src

    result = minimize(TEN, predicate, deadline=time.perf_counter())
    # only the (deadline-exempt) initial reproduction check runs; the
    # best-so-far candidate is the original, still a repro
    assert len(calls) == 1
    assert result.lines == result.original_lines == 10
    assert "y :=" in result.source


def test_minimize_deadline_does_not_mask_non_reproduction():
    import time

    with pytest.raises(ValueError):
        minimize(TEN, lambda s: False, deadline=time.perf_counter() - 1.0)


def test_write_regression_flattens_multiline_detail(tmp_path):
    path = write_regression(
        "y := 1;\n",
        seed=7,
        knobs="defaults",
        kind="compile_crash",
        route="schema2/step",
        baseline="ast",
        detail="boom:\n  unexpected token\n  at line 3",
        inputs=({},),
        out_dir=tmp_path,
    )
    text = path.read_text()
    header = text[:text.index("y := 1;")]
    assert all(
        ln.startswith("#") for ln in header.splitlines() if ln.strip()
    )
    meta = parse_regression(path)
    assert meta["detail"] == "boom: unexpected token at line 3"
    parse(meta["source"])  # the replayed file is still a valid program


def test_regression_blame_headers_round_trip_one_line_safe(tmp_path):
    """guilty_pass / certificate headers survive a round trip, and a
    multiline certificate diff is flattened to one comment line."""
    path = write_regression(
        "y := 1;\n",
        seed=9,
        knobs="defaults",
        kind="pass_certificate",
        route="schema2_opt",
        baseline="ast",
        detail="certificate rejected",
        inputs=({},),
        out_dir=tmp_path,
        guilty_pass="switch_placement",
        certificate="recomputed placement differs\n  stream x:\n  got []",
    )
    text = path.read_text()
    header = text[:text.index("y := 1;")]
    assert all(
        ln.startswith("#") for ln in header.splitlines() if ln.strip()
    )
    meta = parse_regression(path)
    assert meta["guilty_pass"] == "switch_placement"
    assert "\n" not in meta["certificate"]
    assert "recomputed placement differs" in meta["certificate"]
    parse(meta["source"])


def test_blame_headers_absent_when_not_blamed(tmp_path):
    path = write_regression(
        "y := 1;\n", seed=3, knobs="defaults", kind="sim_divergence",
        route="schema1/packed", baseline="ast", detail="d", inputs=({},),
        out_dir=tmp_path,
    )
    assert "guilty_pass" not in path.read_text()
    assert parse_regression(path)["guilty_pass"] == ""


def test_parse_regression_strict_rejects_bad_knobs(tmp_path):
    from repro.validate import RegressionFormatError, parse_regression_strict

    bad = tmp_path / "bad_knobs.df"
    bad.write_text(
        "# seed=1\n# knobs=bogus_knob=7\n# inputs=[{}]\nx := 1;\n"
    )
    with pytest.raises(RegressionFormatError, match="knobs"):
        parse_regression_strict(bad)


def test_parse_regression_strict_rejects_bad_inputs_json(tmp_path):
    from repro.validate import RegressionFormatError, parse_regression_strict

    bad = tmp_path / "bad_inputs.df"
    bad.write_text("# seed=1\n# inputs=[not json}\nx := 1;\n")
    with pytest.raises(RegressionFormatError, match="inputs"):
        parse_regression_strict(bad)


def test_parse_regression_strict_rejects_bad_seed(tmp_path):
    from repro.validate import RegressionFormatError, parse_regression_strict

    bad = tmp_path / "bad_seed.df"
    bad.write_text("# seed=banana\nx := 1;\n")
    with pytest.raises(RegressionFormatError, match="seed"):
        parse_regression_strict(bad)


def test_parse_regression_strict_accepts_valid_files(tmp_path):
    from repro.validate import parse_regression_strict

    path = write_regression(
        "y := 1;\n", seed=4, knobs="n_stmts=6 goto_density=0.1",
        kind="sim_divergence", route="schema1/packed", baseline="ast",
        detail="d", inputs=({"y": 2},), out_dir=tmp_path,
    )
    meta = parse_regression_strict(path)
    assert meta["seed"] == 4 and meta["inputs"] == ({"y": 2},)
