"""Regression replayer: every minimized repro ever persisted under
``tests/corpus/regressions/`` re-runs the full N-way oracle on each
tier-1 run.  A file here records a divergence that was found and fixed;
this test is what keeps it fixed."""

from pathlib import Path

import pytest

from repro.validate import check_program, parse_regression

CORPUS = Path(__file__).resolve().parents[1] / "corpus" / "regressions"
CASES = sorted(CORPUS.glob("*.df"))


@pytest.mark.tier1
@pytest.mark.fuzz
@pytest.mark.parametrize(
    "case", CASES, ids=[c.stem for c in CASES] or None
)
def test_regression_replays_clean(case):
    meta = parse_regression(case)
    report = check_program(meta["source"], meta["inputs"])
    assert report.ok, (
        f"{case.name} diverges again ({meta['kind']} on {meta['route']} "
        f"originally): {report.summary()}"
    )


def test_corpus_directory_exists_and_files_have_headers():
    assert CORPUS.is_dir()
    for case in CASES:
        meta = parse_regression(case)
        assert meta["kind"], f"{case.name}: missing '# kind=' header"
        assert meta["seed"] is not None, f"{case.name}: missing seed"
